"""Concurrency-safe sharded result store: one file per cache entry.

The monolithic ``.sim_cache.json`` of earlier revisions was crash-safe
(temp file + fsync + atomic rename) but not *concurrency*-safe: two
processes saving at once each rewrote the whole file from their private
in-memory store, so the last writer silently dropped the other's entries.
Sharding fixes that structurally — every cache key owns its own entry
file, so N workers writing N different keys touch N different files and
merge by construction, while two writers of the *same* key race only
between bit-identical payloads (simulations are deterministic functions
of the key).

Layout (``root`` is ``<cache path>.d/``, e.g. ``.sim_cache.d/``)::

    .sim_cache.d/
        <sha256(key)[:32]>.json     one entry: {"key": ..., "result": ...}
        <shard>.json.corrupt        quarantined unreadable entry files

Each entry file is written with the same temp + fsync + rename discipline
as before, so readers never observe a torn entry.  The store knows
nothing about :class:`~repro.sim.metrics.SimResult` schemas — entries are
opaque JSON values; schema validation stays in the harness layer.
"""

from __future__ import annotations

import hashlib
import json
import logging
import os
import tempfile
from pathlib import Path
from typing import Dict, Optional, Set

from repro.chaos import controller as _chaos

_ENTRY_SUFFIX = ".json"
_QUARANTINE_SUFFIX = ".corrupt"

_LOG = logging.getLogger("repro.exec.cache")

# -- write-error accounting + per-shard circuit breaker ----------------------
#
# State is process-local (each worker keeps its own books); the campaign
# parent publishes its view through the scheduler's metrics registry as
# ``exec.cache.write_error`` / ``exec.cache.breakers_open``.  A shard
# whose writes keep failing (dead disk, revoked permissions, ENOSPC)
# trips its breaker after ``breaker_threshold`` consecutive errors, and
# every later write is skipped outright — the campaign stops burning
# syscalls and log noise on a disk that is not coming back, while the
# in-memory result still flows to the tables.

DEFAULT_BREAKER_THRESHOLD = 3


class CacheHealth:
    """Process-local ledger of shard reads, write failures, open breakers."""

    def __init__(self, breaker_threshold: int = DEFAULT_BREAKER_THRESHOLD):
        self.breaker_threshold = breaker_threshold
        self.write_errors = 0
        self.hits = 0
        self.misses = 0
        self.quarantined = 0
        self.consecutive: Dict[str, int] = {}
        self.open_breakers: Set[str] = set()
        self.skipped_writes = 0
        self._logged: Set[str] = set()

    def record_error(self, path: Path, exc: OSError) -> None:
        key = str(path)
        self.write_errors += 1
        self.consecutive[key] = self.consecutive.get(key, 0) + 1
        if key not in self._logged:
            # one line per shard, however many times it fails
            self._logged.add(key)
            _LOG.warning(
                "cache shard write failed (%s): %s — counting further "
                "errors for this shard silently",
                path,
                exc,
            )
        if (
            self.consecutive[key] >= self.breaker_threshold
            and key not in self.open_breakers
        ):
            self.open_breakers.add(key)
            _LOG.warning(
                "cache shard %s: circuit breaker open after %d consecutive "
                "write errors; skipping further writes to it",
                path,
                self.consecutive[key],
            )

    def record_success(self, path: Path) -> None:
        self.consecutive.pop(str(path), None)

    def is_open(self, path: Path) -> bool:
        return str(path) in self.open_breakers

    def snapshot(self) -> Dict[str, object]:
        return {
            "hits": self.hits,
            "misses": self.misses,
            "quarantined": self.quarantined,
            "write_errors": self.write_errors,
            "skipped_writes": self.skipped_writes,
            "open_breakers": sorted(self.open_breakers),
        }


_health = CacheHealth()


def cache_health() -> CacheHealth:
    """This process's cache-health ledger (the scheduler exports it)."""
    return _health


def reset_cache_health(
    breaker_threshold: int = DEFAULT_BREAKER_THRESHOLD,
) -> None:
    """Fresh books (tests, and campaigns that redirect the cache path)."""
    global _health
    _health = CacheHealth(breaker_threshold)


class ShardedResultCache:
    """A directory of single-entry JSON files keyed by hashed cache key."""

    def __init__(self, root: Path) -> None:
        self.root = Path(root)

    # -- paths ---------------------------------------------------------------

    def entry_path(self, key: str) -> Path:
        digest = hashlib.sha256(key.encode("utf-8")).hexdigest()[:32]
        return self.root / f"{digest}{_ENTRY_SUFFIX}"

    # -- reads ---------------------------------------------------------------

    def read(self, key: str) -> Optional[object]:
        """The entry stored under ``key``, or None (quarantining a torn file).

        Any unreadable shard — truncated JSON, an ``OSError``, or a write
        torn mid-UTF-8-sequence (which surfaces as ``UnicodeDecodeError``,
        a ``ValueError`` that is *not* a ``JSONDecodeError``) — counts as
        a plain miss; the evidence moves aside, the caller re-simulates.
        """
        path = self.entry_path(key)
        try:
            payload = json.loads(path.read_text())
        except FileNotFoundError:
            _health.misses += 1
            return None
        except (ValueError, OSError):
            self._quarantine(path)
            _health.misses += 1
            return None
        if not isinstance(payload, dict) or payload.get("key") != key:
            # Hash collision or foreign/garbled payload: treat as a miss.
            self._quarantine(path)
            _health.misses += 1
            return None
        _health.hits += 1
        return payload.get("result")

    def read_all(self) -> Dict[str, object]:
        """Every readable entry as ``{key: result}`` (quarantines bad files)."""
        entries: Dict[str, object] = {}
        if not self.root.is_dir():
            return entries
        for path in sorted(self.root.glob(f"*{_ENTRY_SUFFIX}")):
            try:
                payload = json.loads(path.read_text())
            except (ValueError, OSError):
                self._quarantine(path)
                continue
            if not isinstance(payload, dict) or "key" not in payload:
                self._quarantine(path)
                continue
            entries[str(payload["key"])] = payload.get("result")
        return entries

    def exists(self, key: str) -> bool:
        return self.entry_path(key).exists()

    def stats(self) -> Dict[str, object]:
        """Store shape plus this process's read/write accounting.

        ``shards``/``bytes`` walk the directory (cheap at result-cache
        scale); ``quarantined_files`` counts the ``.corrupt`` evidence
        left by torn reads.  The hit/miss/write_error counters come from
        the process-local :class:`CacheHealth` ledger, so a long-lived
        service can watch its cache behave over time (``GET /healthz``)
        and the CLI can print the same numbers (``cli cache-info``).
        """
        shards = 0
        nbytes = 0
        quarantined_files = 0
        if self.root.is_dir():
            for path in self.root.iterdir():
                name = path.name
                if name.endswith(_QUARANTINE_SUFFIX):
                    quarantined_files += 1
                    continue
                if not name.endswith(_ENTRY_SUFFIX):
                    continue
                shards += 1
                try:
                    nbytes += path.stat().st_size
                except OSError:
                    pass
        return {
            "root": str(self.root),
            "shards": shards,
            "bytes": nbytes,
            "quarantined_files": quarantined_files,
            **_health.snapshot(),
        }

    # -- writes --------------------------------------------------------------

    def write(self, key: str, result: object) -> None:
        """Atomically persist one entry (temp file + fsync + rename).

        Concurrent writers of *different* keys write different files, so
        nothing is ever clobbered; concurrent writers of the *same* key
        rename complete files over each other, so readers always see one
        whole entry.
        """
        self.root.mkdir(parents=True, exist_ok=True)
        path = self.entry_path(key)
        payload = json.dumps({"key": key, "result": result})
        # chaos seams: an injected ENOSPC raises here; an injected torn
        # write bypasses the atomic discipline and leaves a truncated
        # file at the final path — exactly what a torn disk leaves.
        _chaos.check_write_error(path)
        if _chaos.take_torn_write(path):
            path.write_text(payload[: max(1, len(payload) // 3)])
            return
        fd, tmp_name = tempfile.mkstemp(
            prefix=path.name + ".", suffix=".tmp", dir=self.root
        )
        try:
            with os.fdopen(fd, "w") as handle:
                handle.write(payload)
                handle.flush()
                os.fsync(handle.fileno())
            os.replace(tmp_name, path)
        except BaseException:
            try:
                os.unlink(tmp_name)
            except OSError:
                pass
            raise

    def safe_write(self, key: str, result: object) -> bool:
        """:meth:`write` that survives a failing disk; True on success.

        An ``OSError`` is *counted* (``exec.cache.write_error``), its
        path logged once per shard, and the per-shard circuit breaker
        fed — never swallowed silently.  Once a shard's breaker is open,
        later writes to it are skipped without touching the filesystem.
        The caller's result is unaffected either way: a result cache
        that cannot persist degrades to a memory cache, not a crash.
        """
        path = self.entry_path(key)
        if _health.is_open(path):
            _health.skipped_writes += 1
            return False
        try:
            self.write(key, result)
        except OSError as exc:
            _health.record_error(path, exc)
            return False
        _health.record_success(path)
        return True

    def remove(self, key: str) -> None:
        try:
            self.entry_path(key).unlink()
        except OSError:
            pass

    def clear(self) -> None:
        """Delete every entry (and the directory, if then empty)."""
        if not self.root.is_dir():
            return
        for path in self.root.glob(f"*{_ENTRY_SUFFIX}"):
            try:
                path.unlink()
            except OSError:
                pass
        try:
            self.root.rmdir()
        except OSError:
            pass  # quarantined files (or a racing writer) keep it alive

    # -- migration -----------------------------------------------------------

    def import_entries(self, entries: Dict[str, object]) -> int:
        """Write each entry that is not already sharded; returns the count.

        This is the one-time migration path from the monolithic cache file:
        existing shard entries win (they are at least as fresh), so two
        processes migrating concurrently converge on the same directory.
        """
        imported = 0
        for key, result in entries.items():
            if not self.exists(key):
                self.write(key, result)
                imported += 1
        return imported

    # -- internals -----------------------------------------------------------

    @staticmethod
    def _quarantine(path: Path) -> None:
        """Move an unreadable entry file aside so the evidence survives."""
        _health.quarantined += 1
        try:
            os.replace(path, path.with_name(path.name + _QUARANTINE_SUFFIX))
        except OSError:
            pass
