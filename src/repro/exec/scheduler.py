"""Multiprocess worker-pool scheduler for simulation jobs.

``run_jobs`` shards a planned job list across ``N`` worker processes
(``--jobs N`` / ``REPRO_JOBS``, defaulting to the machine's core count)
and merges the outcomes back **in plan order**, so parallel campaigns are
bit-identical to serial ones: every job is a deterministic function of
its cache key, and only the completion *order* — which nothing downstream
observes — varies between runs.

Resilience is per job, not per campaign: each worker applies the
campaign layer's :class:`~repro.harness.campaign.RetryPolicy`
(per-attempt timeout, exponential-backoff retries) around its own
simulation, and every finished job persists through the sharded result
cache immediately, so a killed campaign resumes at the granularity of
single (workload, config) pairs.  A failing job never aborts the pool:
the scheduler drains the remaining jobs and reports every failure, so
one bad configuration costs one table, not the whole campaign.

The pool path runs under :mod:`repro.exec.supervisor`: per-job
wall-clock deadlines with watchdog cancellation, ``BrokenProcessPool``
recovery (rebuild the pool, requeue the in-flight jobs), poison-job
quarantine after repeated failed attempts, corrupt-payload detection
with cache invalidation, and SIGTERM/SIGINT graceful drain.  Incidents
surface as ``exec.supervisor.*`` metrics and events; the
:class:`~repro.exec.supervisor.SupervisionReport` of the last run is
available via :func:`last_report`.

Worker processes are forked where available (POSIX), which lets them
inherit the parent's in-memory cache, installed executors, and
monkeypatched test state; ``spawn`` is the fallback elsewhere.
"""

from __future__ import annotations

import dataclasses
import multiprocessing
import os
import time
from concurrent.futures import ProcessPoolExecutor
from dataclasses import dataclass
from typing import Callable, List, Optional, Sequence

from pathlib import Path

from repro import obs
from repro.obs import telemetry
from repro.chaos import class_counts
from repro.chaos import controller as chaos_controller
from repro.chaos.policy import ChaosPolicy
from repro.exec.cache import cache_health
from repro.exec.job import Job
from repro.exec.progress import ProgressSnapshot
from repro.exec.supervisor import (
    DEFAULT_SUPERVISOR,
    ShutdownFlag,
    SupervisionReport,
    SupervisorPolicy,
    _worker_init,
    supervise_pool,
    validate_result,
)
from repro.harness import runner as runner_mod
from repro.sim.engine import SimulationParams, run_workload
from repro.sim.metrics import SimResult


def resolve_jobs(value: Optional[int] = None) -> int:
    """Worker count: explicit value, else ``REPRO_JOBS``, else CPU count."""
    if value is not None:
        return max(1, int(value))
    env = os.environ.get("REPRO_JOBS")
    if env:
        try:
            return max(1, int(env))
        except ValueError:
            pass
    return max(1, os.cpu_count() or 1)


@dataclass
class JobOutcome:
    """What happened to one job: its result, or why it has none."""

    job: Job
    result: Optional[SimResult]
    error: Optional[str] = None
    source: str = "run"  # "cache" | "run" | "failed" | "quarantined"
    attempts: int = 1  # submissions the supervisor made for this job

    @property
    def ok(self) -> bool:
        return self.error is None


# -- worker-side entry points (top level: picklable under spawn) -------------


def _execute_job(job: Job) -> SimResult:
    """Run one job through the shared result cache (persists its entry).

    A job carrying a :class:`~repro.obs.telemetry.TraceContext` runs
    with it as the ambient context, so the worker's sim tracer stamps
    its place in the distributed trace into the trace-file meta.
    """
    if job.trace is None:
        return job.execute()
    with telemetry.activate(job.trace):
        return job.execute()


def _run_config_item(item) -> SimResult:
    workload, config, params = item
    return run_workload(workload, config, params)


# -- progress accounting -----------------------------------------------------


class _Tracker:
    """Progress accounting over a campaign-scoped metrics registry.

    The registry (``exec.jobs.*`` counters, ``exec.job.wall_ms``
    histogram) is the single source for the done/cached/failed counts,
    the live cache-hit percentage, and the per-job p50 wall clock the
    progress line shows; the optional exec tracer records the job
    lifecycle (queued → running/retry → done) into ``*.exec.jsonl``.
    """

    def __init__(
        self,
        total: int,
        cached: int,
        callback: Optional[Callable[[ProgressSnapshot], None]],
        tracer=None,
    ) -> None:
        self.total = total
        self.running = 0
        self.callback = callback
        self.tracer = tracer if tracer is not None else obs.NULL_TRACER
        self.registry = obs.MetricsRegistry()
        self._done = self.registry.counter("exec.jobs.done")
        self._cached = self.registry.counter("exec.jobs.cached")
        self._failed = self.registry.counter("exec.jobs.failed")
        self._retried = self.registry.counter("exec.jobs.retried")
        self._wall_ms = self.registry.histogram("exec.job.wall_ms")
        self._done.inc(cached)
        self._cached.inc(cached)
        self._start = time.monotonic()

    @property
    def done(self) -> int:
        return self._done.value

    @property
    def cached(self) -> int:
        return self._cached.value

    @property
    def failed(self) -> int:
        return self._failed.value

    def _now_us(self) -> int:
        return int((time.monotonic() - self._start) * 1e6)

    def _eta(self) -> Optional[float]:
        executed = self.done + self.failed - self.cached
        remaining = self.total - self.done - self.failed
        if executed <= 0 or remaining <= 0:
            return 0.0 if remaining <= 0 else None
        elapsed = time.monotonic() - self._start
        return elapsed / executed * remaining

    def snapshot(self, label: str = "") -> ProgressSnapshot:
        """The current heartbeat (shared by the progress callback and the
        campaign service's NDJSON stream — one struct, two renderers)."""
        finished = self.done + self.failed
        elapsed = time.monotonic() - self._start
        executed = finished - self.cached
        return ProgressSnapshot(
            done=self.done,
            running=self.running,
            failed=self.failed,
            total=self.total,
            cached=self.cached,
            eta_seconds=self._eta(),
            label=label,
            cache_hit_pct=(
                100.0 * self.cached / finished if finished else None
            ),
            p50_wall_ms=(
                float(self._wall_ms.percentile(50))
                if self._wall_ms.total
                else None
            ),
            p95_wall_ms=(
                float(self._wall_ms.percentile(95))
                if self._wall_ms.total
                else None
            ),
            ops_per_sec=(
                executed / elapsed if executed > 0 and elapsed > 0 else None
            ),
            elapsed_s=elapsed,
        )

    def emit(self, label: str = "") -> None:
        if self.callback is None:
            return
        self.callback(self.snapshot(label))

    def step(self, outcome: JobOutcome) -> None:
        label = outcome.job.describe()
        if outcome.ok:
            self._done.inc()
        else:
            self._failed.inc()
        manifest = getattr(outcome.result, "manifest", None) or {}
        if outcome.ok and outcome.source == "run":
            elapsed = manifest.get("elapsed_s")
            if isinstance(elapsed, (int, float)):
                self._wall_ms.record(max(0, int(elapsed * 1000)))
            if isinstance(manifest.get("attempts"), int) and manifest["attempts"] > 1:
                self._retried.inc(manifest["attempts"] - 1)
        if self.tracer.enabled:
            ts = self._now_us()
            if not outcome.ok:
                name = (
                    "job.quarantined"
                    if outcome.source == "quarantined"
                    else "job.failed"
                )
                self.tracer.instant(
                    name, "exec", ts, job=label, error=outcome.error
                )
            elif outcome.source == "cache":
                self.tracer.instant("job.cached", "exec", ts, job=label)
            else:
                elapsed = manifest.get("elapsed_s")
                dur = (
                    max(1, int(elapsed * 1e6))
                    if isinstance(elapsed, (int, float))
                    else 1
                )
                attempts = manifest.get("attempts")
                if isinstance(attempts, int) and attempts > 1:
                    self.tracer.instant(
                        "job.retried", "exec", max(0, ts - dur),
                        job=label, attempts=attempts,
                    )
                self.tracer.span(
                    "job.done", "exec", max(0, ts - dur), dur, job=label,
                    source=outcome.source,
                )
        self.emit(label)


# -- the scheduler -----------------------------------------------------------


_LAST_REPORT: Optional[SupervisionReport] = None


def last_report() -> Optional[SupervisionReport]:
    """The :class:`SupervisionReport` of the most recent ``run_jobs``."""
    return _LAST_REPORT


def run_jobs(
    jobs: Sequence[Job],
    *,
    max_workers: Optional[int] = None,
    policy=None,
    progress: Optional[Callable[[ProgressSnapshot], None]] = None,
    supervisor: Optional[SupervisorPolicy] = None,
    chaos: Optional[ChaosPolicy] = None,
    shutdown: Optional[ShutdownFlag] = None,
) -> List[JobOutcome]:
    """Execute ``jobs``, in parallel when ``max_workers > 1``.

    Returns one :class:`JobOutcome` per input job **in input order**,
    regardless of completion order.  Jobs already satisfied by the result
    cache are served without touching the pool.  Failed jobs (after the
    policy's retries) yield ``error`` outcomes while the rest of the pool
    drains normally; jobs that keep killing their workers are quarantined
    per ``supervisor``.  When ``shutdown`` trips mid-campaign the drain
    stops gracefully and unfinished jobs are simply omitted from the
    outcome list (their cache entries were never written, so a rerun
    resumes them).  ``chaos`` arms deterministic fault injection — see
    :mod:`repro.chaos`.
    """
    global _LAST_REPORT
    jobs = list(jobs)
    supervisor = supervisor if supervisor is not None else DEFAULT_SUPERVISOR
    outcomes: List[Optional[JobOutcome]] = [None] * len(jobs)

    # Serve cache hits in the parent: free, and it keeps resumed campaigns
    # from paying any pool overhead for work that is already done.
    pending: List[int] = []
    for i, job in enumerate(jobs):
        hit = job.peek()
        if hit is not None:
            outcomes[i] = JobOutcome(job, hit, source="cache")
        else:
            pending.append(i)

    tracker = _Tracker(
        len(jobs),
        cached=len(jobs) - len(pending),
        callback=progress,
        tracer=_exec_tracer(),
    )
    if tracker.tracer.enabled:
        # Join (or mint) a distributed trace: campaigns submitted through
        # the service arrive with an ambient context; standalone traced
        # campaigns become their own root.  Pending jobs each get a child
        # context — attached *after* identity-based dedupe/cache peeking,
        # and compare=False, so telemetry never changes what runs.
        root = telemetry.current() or telemetry.TraceContext.new()
        tracker.tracer.meta.update(root.to_meta())
        for i in pending:
            jobs[i] = dataclasses.replace(jobs[i], trace=root.child())
        for i, job in enumerate(jobs):
            if outcomes[i] is not None:
                tracker.tracer.instant(
                    "job.cached", "exec", 0, job=job.describe(),
                    trace_id=root.trace_id,
                )
            else:
                tracker.tracer.instant(
                    "job.queued", "exec", 0, job=job.describe(),
                    trace_id=root.trace_id, span_id=job.trace.span_id,
                    parent_id=job.trace.parent_id,
                )
    workers = min(resolve_jobs(max_workers), max(1, len(pending)))

    report = SupervisionReport()
    try:
        if not pending:
            tracker.emit()
        elif workers <= 1:
            report = _run_serial(
                jobs, pending, outcomes, policy, tracker,
                supervisor=supervisor, chaos=chaos, shutdown=shutdown,
            )
        else:
            report = _run_pool(
                jobs, pending, outcomes, policy, tracker, workers,
                supervisor=supervisor, chaos=chaos, shutdown=shutdown,
            )
    finally:
        _publish_health(tracker, report, chaos)
        _LAST_REPORT = report
        tracker.tracer.close()
    return [outcome for outcome in outcomes if outcome is not None]


def _publish_health(tracker, report, chaos) -> None:
    """Export cache health and chaos-injection totals on the run registry."""
    health = cache_health()
    if health.write_errors:
        tracker.registry.counter("exec.cache.write_error").set(
            health.write_errors
        )
    if health.open_breakers:
        tracker.registry.gauge("exec.cache.breakers_open").set(
            len(health.open_breakers)
        )
    if chaos is not None and report is not None:
        report.chaos_injected = class_counts(chaos.ledger_path)
        for fault, count in sorted(report.chaos_injected.items()):
            tracker.registry.counter(
                "exec.chaos.injected", fault=fault
            ).set(count)


def _exec_tracer():
    """The job-lifecycle tracer (``<trace>.exec.jsonl``), or the shared
    null when ``--trace`` / ``REPRO_TRACE`` is not configured.

    Exec events use microseconds of wall clock since campaign start as
    ``ts`` — Chrome's native unit — so the lifecycle renders on a real
    timeline next to the per-run simulated-cycle traces.
    """
    trace_path, every = obs.trace_settings()
    if trace_path is None:
        return obs.NULL_TRACER
    base = Path(trace_path)
    suffix = base.suffix if base.suffix else ".jsonl"
    path = base.with_name(f"{base.stem}.exec{suffix}")
    return obs.Tracer(
        path, every=every, meta={"scope": "exec"},
        max_bytes=obs.trace_max_bytes(),
    )


def _record(outcomes, i, job, result, error, source=None, attempts=1) -> JobOutcome:
    if error is None:
        runner_mod.seed_cache(
            job.workload, job.config_name, result, scale=job.scale, params=job.params
        )
        outcome = JobOutcome(job, result, source=source or "run", attempts=attempts)
    else:
        outcome = JobOutcome(
            job, None, error=error, source=source or "failed", attempts=attempts
        )
    outcomes[i] = outcome
    return outcome


def _run_serial(
    jobs, pending, outcomes, policy, tracker,
    *, supervisor=DEFAULT_SUPERVISOR, chaos=None, shutdown=None,
) -> SupervisionReport:
    """In-process execution (``--jobs 1``): the reference serial semantics.

    The supervisor's process-level recoveries do not apply here (there
    is no worker to crash), but result validation, corrupt-payload
    invalidation/retry, quarantine, and graceful shutdown all do — so
    ``--jobs 1`` and ``--jobs N`` campaigns make identical promises.
    """
    from repro.harness.campaign import make_resilient_executor

    report = SupervisionReport()
    registry = tracker.registry
    previous = runner_mod._run_executor
    if policy is not None:
        runner_mod.set_run_executor(make_resilient_executor(policy, base=previous))
    if chaos is not None:
        chaos_controller.configure(chaos)
        chaos_controller.install_executor_chaos()
    try:
        for i in pending:
            if shutdown is not None and shutdown.requested:
                report.interrupted = True
                break
            tracker.running = 1
            attempt = 0
            while True:
                attempt += 1
                try:
                    with chaos_controller.job_site(jobs[i].job_id, attempt):
                        result = _execute_job(jobs[i])
                except Exception as exc:  # noqa: BLE001 - any failure is an outcome
                    tracker.step(
                        _record(
                            outcomes, i, jobs[i], None, _describe_error(exc),
                            attempts=attempt,
                        )
                    )
                    break
                problem = validate_result(result)
                if problem is None:
                    tracker.step(
                        _record(outcomes, i, jobs[i], result, None, attempts=attempt)
                    )
                    break
                runner_mod.invalidate(
                    jobs[i].workload, jobs[i].config_name,
                    scale=jobs[i].scale, params=jobs[i].params,
                )
                report.corrupt_results += 1
                registry.counter("exec.supervisor.corrupt_results").inc()
                if attempt >= supervisor.max_attempts:
                    label = jobs[i].describe()
                    report.quarantined.append(label)
                    registry.counter("exec.supervisor.quarantined").inc()
                    tracker.step(
                        _record(
                            outcomes, i, jobs[i], None,
                            f"quarantined after {attempt} failed attempt(s); "
                            f"last failure: corrupt result: {problem}",
                            source="quarantined", attempts=attempt,
                        )
                    )
                    break
                report.requeues += 1
                registry.counter("exec.supervisor.requeues").inc()
            tracker.running = 0
    finally:
        if chaos is not None:
            chaos_controller.uninstall_executor_chaos()
            chaos_controller.deactivate()
        if policy is not None or chaos is not None:
            runner_mod.set_run_executor(previous)
    return report


def _mp_context():
    methods = multiprocessing.get_all_start_methods()
    return multiprocessing.get_context("fork" if "fork" in methods else None)


def _run_pool(
    jobs, pending, outcomes, policy, tracker, workers,
    *, supervisor=DEFAULT_SUPERVISOR, chaos=None, shutdown=None,
) -> SupervisionReport:
    """Pool execution, supervised: crashes, hangs, and poison jobs are
    incidents to recover from, not campaign-enders."""

    def record(i, result, error, source, attempts):
        outcome = _record(
            outcomes, i, jobs[i], result, error, source=source, attempts=attempts
        )
        tracker.step(outcome)
        return outcome

    return supervise_pool(
        jobs, pending, tracker, workers,
        retry_policy=policy, supervisor=supervisor, chaos=chaos,
        shutdown=shutdown, record=record,
    )


def _describe_error(exc: BaseException) -> str:
    return f"{type(exc).__name__}: {exc}" if str(exc) else type(exc).__name__


# -- ad-hoc parallel map for sweeps ------------------------------------------


def run_configs(
    workload: str,
    configs: Sequence,
    params: Optional[SimulationParams],
    *,
    max_workers: Optional[int] = None,
) -> List[SimResult]:
    """Simulate ``workload`` under each explicit :class:`SystemConfig`.

    The parallel backend for :mod:`repro.harness.sweeps`, where configs are
    ad-hoc field overrides with no stable name (hence no cache entry).
    Results come back in config order; errors propagate (a sweep without
    one of its points is not a sweep).
    """
    configs = list(configs)
    workers = min(resolve_jobs(max_workers), max(1, len(configs)))
    items = [(workload, config, params) for config in configs]
    if workers <= 1 or len(configs) <= 1:
        return [_run_config_item(item) for item in items]
    with ProcessPoolExecutor(max_workers=workers, mp_context=_mp_context()) as pool:
        return list(pool.map(_run_config_item, items))
