"""Multiprocess worker-pool scheduler for simulation jobs.

``run_jobs`` shards a planned job list across ``N`` worker processes
(``--jobs N`` / ``REPRO_JOBS``, defaulting to the machine's core count)
and merges the outcomes back **in plan order**, so parallel campaigns are
bit-identical to serial ones: every job is a deterministic function of
its cache key, and only the completion *order* — which nothing downstream
observes — varies between runs.

Resilience is per job, not per campaign: each worker applies the
campaign layer's :class:`~repro.harness.campaign.RetryPolicy`
(per-attempt timeout, exponential-backoff retries) around its own
simulation, and every finished job persists through the sharded result
cache immediately, so a killed campaign resumes at the granularity of
single (workload, config) pairs.  A failing job never aborts the pool:
the scheduler drains the remaining jobs and reports every failure, so
one bad configuration costs one table, not the whole campaign.

Worker processes are forked where available (POSIX), which lets them
inherit the parent's in-memory cache, installed executors, and
monkeypatched test state; ``spawn`` is the fallback elsewhere.
"""

from __future__ import annotations

import multiprocessing
import os
import time
from concurrent.futures import FIRST_COMPLETED, ProcessPoolExecutor, wait
from dataclasses import dataclass
from typing import Callable, List, Optional, Sequence

from pathlib import Path

from repro import obs
from repro.exec.job import Job
from repro.exec.progress import ProgressSnapshot
from repro.harness import runner as runner_mod
from repro.sim.engine import SimulationParams, run_workload
from repro.sim.metrics import SimResult


def resolve_jobs(value: Optional[int] = None) -> int:
    """Worker count: explicit value, else ``REPRO_JOBS``, else CPU count."""
    if value is not None:
        return max(1, int(value))
    env = os.environ.get("REPRO_JOBS")
    if env:
        try:
            return max(1, int(env))
        except ValueError:
            pass
    return max(1, os.cpu_count() or 1)


@dataclass
class JobOutcome:
    """What happened to one job: its result, or why it has none."""

    job: Job
    result: Optional[SimResult]
    error: Optional[str] = None
    source: str = "run"  # "cache" | "run" | "failed"

    @property
    def ok(self) -> bool:
        return self.error is None


# -- worker-side entry points (top level: picklable under spawn) -------------


def _worker_init(policy) -> None:
    """Install the per-job retry/timeout policy in this worker process."""
    if policy is not None:
        from repro.harness.campaign import install_retry_executor

        install_retry_executor(policy)


def _execute_job(job: Job) -> SimResult:
    """Run one job through the shared result cache (persists its entry)."""
    return job.execute()


def _run_config_item(item) -> SimResult:
    workload, config, params = item
    return run_workload(workload, config, params)


# -- progress accounting -----------------------------------------------------


class _Tracker:
    """Progress accounting over a campaign-scoped metrics registry.

    The registry (``exec.jobs.*`` counters, ``exec.job.wall_ms``
    histogram) is the single source for the done/cached/failed counts,
    the live cache-hit percentage, and the per-job p50 wall clock the
    progress line shows; the optional exec tracer records the job
    lifecycle (queued → running/retry → done) into ``*.exec.jsonl``.
    """

    def __init__(
        self,
        total: int,
        cached: int,
        callback: Optional[Callable[[ProgressSnapshot], None]],
        tracer=None,
    ) -> None:
        self.total = total
        self.running = 0
        self.callback = callback
        self.tracer = tracer if tracer is not None else obs.NULL_TRACER
        self.registry = obs.MetricsRegistry()
        self._done = self.registry.counter("exec.jobs.done")
        self._cached = self.registry.counter("exec.jobs.cached")
        self._failed = self.registry.counter("exec.jobs.failed")
        self._retried = self.registry.counter("exec.jobs.retried")
        self._wall_ms = self.registry.histogram("exec.job.wall_ms")
        self._done.inc(cached)
        self._cached.inc(cached)
        self._start = time.monotonic()

    @property
    def done(self) -> int:
        return self._done.value

    @property
    def cached(self) -> int:
        return self._cached.value

    @property
    def failed(self) -> int:
        return self._failed.value

    def _now_us(self) -> int:
        return int((time.monotonic() - self._start) * 1e6)

    def _eta(self) -> Optional[float]:
        executed = self.done + self.failed - self.cached
        remaining = self.total - self.done - self.failed
        if executed <= 0 or remaining <= 0:
            return 0.0 if remaining <= 0 else None
        elapsed = time.monotonic() - self._start
        return elapsed / executed * remaining

    def emit(self, label: str = "") -> None:
        if self.callback is None:
            return
        finished = self.done + self.failed
        self.callback(
            ProgressSnapshot(
                done=self.done,
                running=self.running,
                failed=self.failed,
                total=self.total,
                cached=self.cached,
                eta_seconds=self._eta(),
                label=label,
                cache_hit_pct=(
                    100.0 * self.cached / finished if finished else None
                ),
                p50_wall_ms=(
                    float(self._wall_ms.percentile(50))
                    if self._wall_ms.total
                    else None
                ),
            )
        )

    def step(self, outcome: JobOutcome) -> None:
        label = outcome.job.describe()
        if outcome.ok:
            self._done.inc()
        else:
            self._failed.inc()
        manifest = getattr(outcome.result, "manifest", None) or {}
        if outcome.ok and outcome.source == "run":
            elapsed = manifest.get("elapsed_s")
            if isinstance(elapsed, (int, float)):
                self._wall_ms.record(max(0, int(elapsed * 1000)))
            if isinstance(manifest.get("attempts"), int) and manifest["attempts"] > 1:
                self._retried.inc(manifest["attempts"] - 1)
        if self.tracer.enabled:
            ts = self._now_us()
            if not outcome.ok:
                self.tracer.instant(
                    "job.failed", "exec", ts, job=label, error=outcome.error
                )
            elif outcome.source == "cache":
                self.tracer.instant("job.cached", "exec", ts, job=label)
            else:
                elapsed = manifest.get("elapsed_s")
                dur = (
                    max(1, int(elapsed * 1e6))
                    if isinstance(elapsed, (int, float))
                    else 1
                )
                attempts = manifest.get("attempts")
                if isinstance(attempts, int) and attempts > 1:
                    self.tracer.instant(
                        "job.retried", "exec", max(0, ts - dur),
                        job=label, attempts=attempts,
                    )
                self.tracer.span(
                    "job.done", "exec", max(0, ts - dur), dur, job=label,
                    source=outcome.source,
                )
        self.emit(label)


# -- the scheduler -----------------------------------------------------------


def run_jobs(
    jobs: Sequence[Job],
    *,
    max_workers: Optional[int] = None,
    policy=None,
    progress: Optional[Callable[[ProgressSnapshot], None]] = None,
) -> List[JobOutcome]:
    """Execute ``jobs``, in parallel when ``max_workers > 1``.

    Returns one :class:`JobOutcome` per input job **in input order**,
    regardless of completion order.  Jobs already satisfied by the result
    cache are served without touching the pool.  Failed jobs (after the
    policy's retries) yield ``error`` outcomes while the rest of the pool
    drains normally.
    """
    jobs = list(jobs)
    outcomes: List[Optional[JobOutcome]] = [None] * len(jobs)

    # Serve cache hits in the parent: free, and it keeps resumed campaigns
    # from paying any pool overhead for work that is already done.
    pending: List[int] = []
    for i, job in enumerate(jobs):
        hit = job.peek()
        if hit is not None:
            outcomes[i] = JobOutcome(job, hit, source="cache")
        else:
            pending.append(i)

    tracker = _Tracker(
        len(jobs),
        cached=len(jobs) - len(pending),
        callback=progress,
        tracer=_exec_tracer(),
    )
    if tracker.tracer.enabled:
        for i, job in enumerate(jobs):
            if outcomes[i] is not None:
                tracker.tracer.instant(
                    "job.cached", "exec", 0, job=job.describe()
                )
            else:
                tracker.tracer.instant(
                    "job.queued", "exec", 0, job=job.describe()
                )
    workers = min(resolve_jobs(max_workers), max(1, len(pending)))

    try:
        if not pending:
            tracker.emit()
        elif workers <= 1:
            _run_serial(jobs, pending, outcomes, policy, tracker)
        else:
            _run_pool(jobs, pending, outcomes, policy, tracker, workers)
    finally:
        tracker.tracer.close()
    return [outcome for outcome in outcomes if outcome is not None]


def _exec_tracer():
    """The job-lifecycle tracer (``<trace>.exec.jsonl``), or the shared
    null when ``--trace`` / ``REPRO_TRACE`` is not configured.

    Exec events use microseconds of wall clock since campaign start as
    ``ts`` — Chrome's native unit — so the lifecycle renders on a real
    timeline next to the per-run simulated-cycle traces.
    """
    trace_path, every = obs.trace_settings()
    if trace_path is None:
        return obs.NULL_TRACER
    base = Path(trace_path)
    suffix = base.suffix if base.suffix else ".jsonl"
    path = base.with_name(f"{base.stem}.exec{suffix}")
    return obs.Tracer(path, every=every, meta={"scope": "exec"})


def _record(outcomes, i, job, result, error) -> JobOutcome:
    if error is None:
        runner_mod.seed_cache(
            job.workload, job.config_name, result, scale=job.scale, params=job.params
        )
        outcome = JobOutcome(job, result)
    else:
        outcome = JobOutcome(job, None, error=error, source="failed")
    outcomes[i] = outcome
    return outcome


def _run_serial(jobs, pending, outcomes, policy, tracker) -> None:
    """In-process execution (``--jobs 1``): the reference serial semantics."""
    from repro.harness.campaign import make_resilient_executor

    previous = runner_mod._run_executor
    if policy is not None:
        runner_mod.set_run_executor(make_resilient_executor(policy, base=previous))
    try:
        for i in pending:
            tracker.running = 1
            try:
                result = _execute_job(jobs[i])
            except Exception as exc:  # noqa: BLE001 - any failure is an outcome
                tracker.step(_record(outcomes, i, jobs[i], None, _describe_error(exc)))
            else:
                tracker.step(_record(outcomes, i, jobs[i], result, None))
            tracker.running = 0
    finally:
        if policy is not None:
            runner_mod.set_run_executor(previous)


def _mp_context():
    methods = multiprocessing.get_all_start_methods()
    return multiprocessing.get_context("fork" if "fork" in methods else None)


def _run_pool(jobs, pending, outcomes, policy, tracker, workers) -> None:
    with ProcessPoolExecutor(
        max_workers=workers,
        mp_context=_mp_context(),
        initializer=_worker_init,
        initargs=(policy,),
    ) as pool:
        futures = {pool.submit(_execute_job, jobs[i]): i for i in pending}
        remaining = set(futures)
        while remaining:
            done, remaining = wait(remaining, return_when=FIRST_COMPLETED)
            tracker.running = len(remaining)
            for future in done:
                i = futures[future]
                try:
                    result = future.result()
                except Exception as exc:  # noqa: BLE001 - drain, don't abort
                    outcome = _record(outcomes, i, jobs[i], None, _describe_error(exc))
                else:
                    outcome = _record(outcomes, i, jobs[i], result, None)
                tracker.step(outcome)


def _describe_error(exc: BaseException) -> str:
    return f"{type(exc).__name__}: {exc}" if str(exc) else type(exc).__name__


# -- ad-hoc parallel map for sweeps ------------------------------------------


def run_configs(
    workload: str,
    configs: Sequence,
    params: Optional[SimulationParams],
    *,
    max_workers: Optional[int] = None,
) -> List[SimResult]:
    """Simulate ``workload`` under each explicit :class:`SystemConfig`.

    The parallel backend for :mod:`repro.harness.sweeps`, where configs are
    ad-hoc field overrides with no stable name (hence no cache entry).
    Results come back in config order; errors propagate (a sweep without
    one of its points is not a sweep).
    """
    configs = list(configs)
    workers = min(resolve_jobs(max_workers), max(1, len(configs)))
    items = [(workload, config, params) for config in configs]
    if workers <= 1 or len(configs) <= 1:
        return [_run_config_item(item) for item in items]
    with ProcessPoolExecutor(max_workers=workers, mp_context=_mp_context()) as pool:
        return list(pool.map(_run_config_item, items))
