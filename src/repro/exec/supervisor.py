"""Supervision for the worker pool: deadlines, crash recovery, quarantine.

The PR 2 scheduler assumed workers either finish or raise.  Real fleets
do worse: processes die (``BrokenProcessPool``), wedge forever, return
garbage, and the disk under the result cache tears or fills.  This
module wraps the pool in a supervisor that converts every one of those
into a bounded, observable incident:

* **watchdog deadlines** — workers append a start marker (PID, attempt)
  to a shared ledger the moment they pick a job up; the supervisor polls
  it and terminates the pool when a job overstays ``deadline`` seconds;
* **crash recovery** — a broken pool is rebuilt and its in-flight jobs
  requeued, with the incident counted against each job that had actually
  started (conservative attribution: co-flight innocents are retried at
  worst, never lost);
* **poison-job quarantine** — a job whose attempts keep dying is
  quarantined after ``max_attempts``: the campaign drains and the exit
  report names it, instead of the whole run aborting;
* **payload validation** — results are sanity-checked (finite cycles,
  rates in [0, 1]) in the worker *and* the parent; a corrupt payload is
  invalidated from the cache and the job requeued;
* **graceful shutdown** — SIGTERM/SIGINT stop new submissions, give
  running jobs a grace window to finish (each persists its own cache
  shard), and leave the campaign resumable bit-identically.

Every incident emits an ``exec.supervisor.*`` metric and a structured
event on the campaign's ``*.exec.jsonl`` trace.
"""

from __future__ import annotations

import math
import multiprocessing
import os
import shutil
import signal
import tempfile
import time
from collections import deque
from concurrent.futures import FIRST_COMPLETED, ProcessPoolExecutor, wait
from concurrent.futures.process import BrokenProcessPool
from contextlib import contextmanager
from dataclasses import dataclass, field
from typing import Callable, Dict, List, Optional, Sequence, Set

from repro.chaos import ledger as ledger_mod
from repro.chaos import controller as chaos_controller
from repro.chaos.policy import ChaosPolicy
from repro.exec.job import Job
from repro.harness import runner as runner_mod
from repro.obs import telemetry
from repro.sim.metrics import SimResult


class CorruptResultError(Exception):
    """A job's result payload failed validation (and was invalidated)."""


@dataclass(frozen=True)
class SupervisorPolicy:
    """Knobs for pool supervision.

    ``deadline`` is the per-job wall-clock budget the watchdog enforces
    (None disables it).  ``max_attempts`` counts *started* submissions of
    one job before it is quarantined.  ``max_pool_rebuilds`` bounds
    crash/hang recovery for the whole campaign.  ``grace`` is how long a
    graceful shutdown waits for in-flight jobs before terminating them.
    """

    deadline: Optional[float] = None
    max_attempts: int = 3
    max_pool_rebuilds: int = 20
    tick: float = 0.25
    grace: float = 10.0


DEFAULT_SUPERVISOR = SupervisorPolicy()


@dataclass
class SupervisionReport:
    """What the supervisor saw and did during one ``run_jobs`` call."""

    pool_rebuilds: int = 0
    crash_incidents: int = 0
    watchdog_kills: int = 0
    requeues: int = 0
    corrupt_results: int = 0
    quarantined: List[str] = field(default_factory=list)
    interrupted: bool = False
    chaos_injected: Dict[str, int] = field(default_factory=dict)

    def describe(self) -> str:
        bits = []
        if self.crash_incidents:
            bits.append(f"{self.crash_incidents} crash(es)")
        if self.watchdog_kills:
            bits.append(f"{self.watchdog_kills} watchdog kill(s)")
        if self.corrupt_results:
            bits.append(f"{self.corrupt_results} corrupt result(s)")
        if self.pool_rebuilds:
            bits.append(f"{self.pool_rebuilds} pool rebuild(s)")
        if self.requeues:
            bits.append(f"{self.requeues} requeue(s)")
        if self.quarantined:
            bits.append(f"{len(self.quarantined)} quarantined")
        if self.interrupted:
            bits.append("interrupted")
        return ", ".join(bits) if bits else "no incidents"


# ---------------------------------------------------------------------------
# graceful shutdown


class ShutdownFlag:
    """Latched by the signal handler, polled by the supervisor loop."""

    def __init__(self) -> None:
        self.signum: Optional[int] = None
        self.count = 0

    def trip(self, signum: int) -> None:
        self.signum = signum
        self.count += 1

    @property
    def requested(self) -> bool:
        return self.signum is not None


@contextmanager
def graceful_signals(
    flag: ShutdownFlag,
    signums: Sequence[int] = (signal.SIGINT, signal.SIGTERM),
):
    """Route SIGINT/SIGTERM into ``flag`` for the duration of a campaign.

    The first signal requests a graceful stop (drain in-flight jobs,
    checkpoint, exit); a second one falls back to ``KeyboardInterrupt``
    for users who really mean *now*.  Outside the main thread (where
    signal handlers cannot be installed) this degrades to a no-op.
    """

    def _handler(signum, _frame):
        flag.trip(signum)
        if flag.count >= 2:
            raise KeyboardInterrupt

    previous = {}
    try:
        for signum in signums:
            previous[signum] = signal.signal(signum, _handler)
    except ValueError:  # not the main thread
        previous = {}
    try:
        yield flag
    finally:
        for signum, old in previous.items():
            signal.signal(signum, old)


# ---------------------------------------------------------------------------
# result validation


def validate_result(result) -> Optional[str]:
    """Why ``result`` is not a sane :class:`SimResult`, or None if it is.

    This is the detection side of the ``exec.corrupt`` failure class:
    cheap structural invariants every real simulation satisfies, strict
    enough to catch garbled payloads (chaos-injected or otherwise)
    before they poison a table or the result cache.
    """
    if not isinstance(result, SimResult):
        return f"payload is {type(result).__name__}, not SimResult"
    for name in ("cycles", "energy_nj"):
        value = getattr(result, name)
        if (
            not isinstance(value, (int, float))
            or not math.isfinite(value)
            or value < 0
        ):
            return f"{name}={value!r} is not a finite non-negative number"
    if result.cycles <= 0:
        return f"cycles={result.cycles!r} is not positive"
    if not isinstance(result.instructions, int) or result.instructions < 0:
        return f"instructions={result.instructions!r} is negative"
    for name in ("l3_hit_rate", "l4_hit_rate"):
        rate = getattr(result, name)
        if (
            not isinstance(rate, (int, float))
            or not math.isfinite(rate)
            or not 0.0 <= rate <= 1.0
        ):
            return f"{name}={rate!r} is outside [0, 1]"
    ipcs = result.per_core_ipc
    if not isinstance(ipcs, (list, tuple)) or not ipcs:
        return f"per_core_ipc={ipcs!r} is not a non-empty list"
    for ipc in ipcs:
        if (
            not isinstance(ipc, (int, float))
            or not math.isfinite(ipc)
            or ipc < 0
        ):
            return f"per_core_ipc contains {ipc!r}"
    return None


# ---------------------------------------------------------------------------
# worker-side entry points (top level: picklable under spawn)


def _worker_init(policy, chaos_policy: Optional[ChaosPolicy] = None) -> None:
    """Install the retry policy and (if any) the chaos seams in a worker."""
    if policy is not None:
        from repro.harness.campaign import install_retry_executor

        install_retry_executor(policy)
    if chaos_policy is not None:
        chaos_controller.configure(chaos_policy)
        chaos_controller.install_executor_chaos()


def _supervised_execute(
    job: Job, attempt: int, marker_path: Optional[str]
) -> SimResult:
    """Run one job under supervision bookkeeping.

    The start marker is what gives the parent watchdog a job-accurate
    clock (queue time excluded) and gives crash attribution its ground
    truth: whatever started and never finished was in the blast radius.
    """
    if marker_path:
        ledger_mod.append_jsonl(
            marker_path,
            {"job_id": job.job_id, "attempt": attempt, "pid": os.getpid()},
        )
    with chaos_controller.job_site(job.job_id, attempt):
        # restore the job's distributed-trace coordinates as this
        # worker's ambient context (no-op for an untraced job)
        with telemetry.activate(job.trace):
            result = job.execute()
    problem = validate_result(result)
    if problem is not None:
        # The poisoned value reached the cache inside job.execute();
        # scrub it here, where we still know it is poisoned.
        runner_mod.invalidate(
            job.workload, job.config_name, scale=job.scale, params=job.params
        )
        raise CorruptResultError(f"{job.describe()}: {problem}")
    return result


def _mp_context():
    methods = multiprocessing.get_all_start_methods()
    return multiprocessing.get_context("fork" if "fork" in methods else None)


def _terminate_pool(pool: ProcessPoolExecutor) -> Dict[int, Optional[int]]:
    """Forcibly stop a pool whose workers cannot be trusted to return.

    Returns ``{pid: exitcode}`` for the pool's workers.  Exit codes are
    the crash-attribution evidence: a worker that died *on its own*
    (segfault, ``os._exit``, OOM kill) keeps its own exit code, while
    innocents terminated here (or by the pool's own broken-state cleanup)
    show ``-SIGTERM`` — so the supervisor can penalize only the job whose
    worker actually crashed.
    """
    processes = list((getattr(pool, "_processes", None) or {}).values())
    for process in processes:
        try:
            process.terminate()
        except Exception:  # noqa: BLE001 - already-dead processes etc.
            pass
    pool.shutdown(wait=False, cancel_futures=True)
    exit_codes: Dict[int, Optional[int]] = {}
    for process in processes:
        try:
            process.join(2.0)
            exit_codes[process.pid] = process.exitcode
        except Exception:  # noqa: BLE001
            pass
    return exit_codes


def _died_on_its_own(code: Optional[int]) -> bool:
    """Whether a worker exit code indicates a self-inflicted death (the
    crash culprit) rather than a clean exit or a supervisor SIGTERM."""
    return code is not None and code not in (0, -signal.SIGTERM)


# ---------------------------------------------------------------------------
# the supervised pool loop


def supervise_pool(
    jobs: Sequence[Job],
    pending: Sequence[int],
    tracker,
    workers: int,
    *,
    retry_policy=None,
    supervisor: SupervisorPolicy = DEFAULT_SUPERVISOR,
    chaos: Optional[ChaosPolicy] = None,
    shutdown: Optional[ShutdownFlag] = None,
    record: Callable,
) -> SupervisionReport:
    """Run ``pending`` on a supervised pool; outcomes go through ``record``.

    ``record(index, result, error, source, attempts)`` is the scheduler's
    callback that builds the :class:`~repro.exec.scheduler.JobOutcome`,
    seeds the result cache, and updates progress.  Jobs left unrecorded
    on interruption simply stay pending — the result cache already holds
    every completed job, so the next invocation resumes exactly there.
    """
    report = SupervisionReport()
    registry = tracker.registry
    c_rebuilds = registry.counter("exec.supervisor.pool_rebuilds")
    c_watchdog = registry.counter("exec.supervisor.watchdog_kills")
    c_requeue = registry.counter("exec.supervisor.requeues")
    c_quarantined = registry.counter("exec.supervisor.quarantined")
    c_corrupt = registry.counter("exec.supervisor.corrupt_results")
    tracer = tracker.tracer

    def event(name: str, **fields) -> None:
        if tracer.enabled:
            tracer.instant(name, "exec", tracker._now_us(), **fields)

    marker_dir = tempfile.mkdtemp(prefix=".exec_supervise.")
    marker_path = os.path.join(marker_dir, "started.jsonl")
    marker_offset = 0
    by_id = {jobs[i].job_id: i for i in pending}
    attempts: Dict[int, int] = {i: 0 for i in pending}
    started_attempt: Dict[int, int] = {}
    started_at: Dict[int, float] = {}
    started_pid: Dict[int, int] = {}
    last_reason: Dict[int, str] = {}
    queue = deque(pending)
    grace_deadline: Optional[float] = None

    def fail_or_requeue(i: int, reason: str, kind: str) -> None:
        """One attributed failed attempt: retry the job or quarantine it."""
        last_reason[i] = reason
        if attempts[i] >= supervisor.max_attempts:
            label = jobs[i].describe()
            report.quarantined.append(label)
            c_quarantined.inc()
            event(
                "supervisor.quarantine",
                job=label, attempts=attempts[i], reason=kind,
            )
            record(
                i, None,
                f"quarantined after {attempts[i]} failed attempt(s); "
                f"last failure: {reason}",
                "quarantined", attempts[i],
            )
        else:
            queue.append(i)
            report.requeues += 1
            c_requeue.inc()
            event(
                "supervisor.requeue",
                job=jobs[i].describe(), attempt=attempts[i], reason=kind,
            )

    def refresh_markers(now: float) -> None:
        nonlocal marker_offset
        marker_offset, markers = ledger_mod.read_jsonl(
            marker_path, marker_offset
        )
        for marker in markers:
            i = by_id.get(marker.get("job_id"))
            if i is not None:
                started_attempt[i] = int(marker.get("attempt", 0))
                started_at[i] = now
                started_pid[i] = int(marker.get("pid", 0))

    try:
        while queue:
            if shutdown is not None and shutdown.requested:
                report.interrupted = True
                break
            if report.pool_rebuilds > supervisor.max_pool_rebuilds:
                while queue:
                    i = queue.popleft()
                    record(
                        i, None,
                        f"supervisor: pool rebuild budget "
                        f"({supervisor.max_pool_rebuilds}) exhausted; "
                        f"last failure: {last_reason.get(i, 'unknown')}",
                        "failed", attempts[i],
                    )
                break
            pool = ProcessPoolExecutor(
                max_workers=min(workers, len(queue)),
                mp_context=_mp_context(),
                initializer=_worker_init,
                initargs=(retry_policy, chaos),
            )
            futures: Dict[object, int] = {}
            broke = False
            broken_idx: List[int] = []
            hung: Set[int] = set()
            worker_exit: Dict[int, Optional[int]] = {}
            try:
                while queue and not broke:
                    i = queue.popleft()
                    attempts[i] += 1
                    try:
                        future = pool.submit(
                            _supervised_execute, jobs[i], attempts[i],
                            marker_path,
                        )
                    except (BrokenProcessPool, RuntimeError):
                        attempts[i] -= 1
                        queue.appendleft(i)
                        broke = True
                        break
                    futures[future] = i
                while futures:
                    if shutdown is not None and shutdown.requested:
                        if grace_deadline is None:
                            report.interrupted = True
                            grace_deadline = (
                                time.monotonic() + supervisor.grace
                            )
                            for future in list(futures):
                                if future.cancel():
                                    i = futures.pop(future)
                                    attempts[i] -= 1  # never actually ran
                            event(
                                "supervisor.interrupted",
                                signum=shutdown.signum,
                                draining=len(futures),
                            )
                        if time.monotonic() > grace_deadline:
                            break
                    done, _ = wait(
                        list(futures),
                        timeout=supervisor.tick,
                        return_when=FIRST_COMPLETED,
                    )
                    now = time.monotonic()
                    refresh_markers(now)
                    for future in done:
                        i = futures.pop(future)
                        try:
                            result = future.result()
                        except BrokenProcessPool:
                            broken_idx.append(i)
                            broke = True
                            break  # the pool is dead; so is everything in it
                        except CorruptResultError as exc:
                            report.corrupt_results += 1
                            c_corrupt.inc()
                            event(
                                "supervisor.corrupt_result",
                                job=jobs[i].describe(), attempt=attempts[i],
                            )
                            fail_or_requeue(i, str(exc), "corrupt")
                        except Exception as exc:  # noqa: BLE001 - drain
                            record(
                                i, None, _describe_error(exc), "failed",
                                attempts[i],
                            )
                        else:
                            problem = validate_result(result)
                            if problem is not None:
                                # Parent-side belt and braces: a worker
                                # whose validation was itself corrupted
                                # still cannot poison the campaign.
                                runner_mod.invalidate(
                                    jobs[i].workload, jobs[i].config_name,
                                    scale=jobs[i].scale,
                                    params=jobs[i].params,
                                )
                                report.corrupt_results += 1
                                c_corrupt.inc()
                                fail_or_requeue(
                                    i, f"corrupt result: {problem}",
                                    "corrupt",
                                )
                            else:
                                record(
                                    i, result, None, "run", attempts[i]
                                )
                    tracker.running = len(futures)
                    if broke:
                        break
                    if supervisor.deadline is not None:
                        for future, i in list(futures.items()):
                            if (
                                started_attempt.get(i) == attempts[i]
                                and now - started_at.get(i, now)
                                > supervisor.deadline
                            ):
                                hung.add(i)
                        if hung:
                            break
            finally:
                if broke or hung or futures:
                    worker_exit = _terminate_pool(pool)
                else:
                    pool.shutdown(wait=True)

            unfinished = broken_idx + list(futures.values())
            if broke or hung:
                report.pool_rebuilds += 1
                c_rebuilds.inc()
                if broke:
                    report.crash_incidents += 1
                event(
                    "supervisor.pool_rebuild",
                    reason="watchdog" if hung else "broken_pool",
                    unfinished=len(unfinished),
                )
                refresh_markers(time.monotonic())
                for i in unfinished:
                    if started_attempt.get(i) != attempts[i]:
                        # Never started this attempt: requeue, no penalty.
                        attempts[i] -= 1
                        queue.append(i)
                        continue
                    if i in hung:
                        report.watchdog_kills += 1
                        c_watchdog.inc()
                        event(
                            "supervisor.watchdog_kill",
                            job=jobs[i].describe(),
                            deadline=supervisor.deadline,
                        )
                        fail_or_requeue(
                            i,
                            f"exceeded the {supervisor.deadline:g}s "
                            f"deadline (watchdog kill)",
                            "hang",
                        )
                        continue
                    code = worker_exit.get(started_pid.get(i, -1))
                    if _died_on_its_own(code):
                        fail_or_requeue(
                            i,
                            f"worker process crashed (exit code {code})",
                            "crash",
                        )
                    else:
                        # Started, but its worker was terminated by the
                        # cleanup, not by its own death: an innocent
                        # co-flight of the crash.  Requeue, no penalty.
                        attempts[i] -= 1
                        queue.append(i)
                        report.requeues += 1
                        c_requeue.inc()
                        event(
                            "supervisor.requeue",
                            job=jobs[i].describe(),
                            attempt=attempts[i] + 1,
                            reason="collateral",
                        )
            elif report.interrupted:
                break
        tracker.running = 0
    finally:
        shutil.rmtree(marker_dir, ignore_errors=True)
    return report


def _describe_error(exc: BaseException) -> str:
    return f"{type(exc).__name__}: {exc}" if str(exc) else type(exc).__name__
