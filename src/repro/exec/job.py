"""The unit of schedulable work: one (workload × config × params) simulation.

A :class:`Job` is a value object — frozen, hashable, and picklable — so the
planner can dedupe jobs shared between figures with a plain dict and the
scheduler can ship them to worker processes.  Its :attr:`cache_key` is the
*same* tuple the result cache keys on, which is what makes "checkpoint and
resume per job" fall out for free: a job whose key is already cached is
complete, wherever (and whenever) it ran.
"""

from __future__ import annotations

import hashlib
import json
from dataclasses import dataclass, field
from typing import TYPE_CHECKING, Optional, Tuple

from repro.harness import runner as runner_mod
from repro.sim.engine import SimulationParams
from repro.sim.metrics import SimResult

if TYPE_CHECKING:  # import at runtime would close an import cycle:
    # repro.obs initializes via repro.sim, which this module precedes
    from repro.obs.telemetry import TraceContext


def derive_rep_seed(base_seed: int, rep: int) -> int:
    """Deterministic per-repetition seed: identity at rep 0.

    Repetition 0 reuses ``base_seed`` unchanged, which is what keeps a
    single-repetition campaign bit-identical to a campaign that never
    heard of repetitions.  Later reps hash ``(base_seed, rep)`` so the
    derived seeds are pairwise distinct, order-independent, and stable
    across processes and platforms (sha256, not ``hash()``).
    """
    if rep == 0:
        return base_seed
    digest = hashlib.sha256(f"rep:{base_seed}:{rep}".encode("utf-8")).digest()
    return int.from_bytes(digest[:4], "big")


@dataclass(frozen=True)
class Job:
    """One independent simulation, addressable by its stable cache key."""

    workload: str
    config_name: str
    # default_factory (not a plain default) so the partially-initialized
    # runner module is never touched during the runner <-> exec import cycle
    scale: int = field(default_factory=lambda: runner_mod.DEFAULT_SCALE)
    params: SimulationParams = field(default_factory=SimulationParams)
    # Distributed-trace coordinates, attached by the scheduler/daemon when
    # tracing is on.  compare=False keeps identity (eq/hash), cache_key and
    # job_id exactly what they were without a trace — telemetry must never
    # change which results dedupe or where they land in the cache.
    trace: Optional["TraceContext"] = field(
        default=None, compare=False, repr=False
    )
    # Repetition index within a statistical campaign.  compare=False for
    # the same reason as ``trace``: identity stays keyed on what was
    # simulated.  Distinct reps already differ there — the planner derives
    # a distinct per-rep seed into ``params`` — so ``rep`` is pure
    # labeling metadata for the run table, never a dedupe discriminator
    # beyond what the derived seed provides.
    rep: int = field(default=0, compare=False)

    @property
    def cache_key(self) -> Tuple:
        """The result-cache key tuple (see ``runner._key``)."""
        return runner_mod._key(
            self.workload, self.config_name, self.scale, self.params
        )

    @property
    def job_id(self) -> str:
        """Short stable identifier derived from the cache key."""
        digest = hashlib.sha256(
            json.dumps(self.cache_key).encode("utf-8")
        ).hexdigest()
        return digest[:12]

    def describe(self) -> str:
        """Human label for progress lines and failure reports."""
        label = f"{self.workload} × {self.config_name}"
        if self.params.fault_rate:
            label += f" @fault={self.params.fault_rate:g}"
        if self.rep:
            label += f" rep={self.rep}"
        return label

    def peek(self) -> Optional[SimResult]:
        """This job's cached result, if any (memory or disk)."""
        return runner_mod.peek_cached(
            self.workload, self.config_name, scale=self.scale, params=self.params
        )

    def execute(self) -> SimResult:
        """Run (or fetch) the simulation through the shared result cache."""
        return runner_mod.cached_run(
            self.workload, self.config_name, scale=self.scale, params=self.params
        )


def make_job(
    workload: str,
    config_name: str,
    *,
    scale: Optional[int] = None,
    params: Optional[SimulationParams] = None,
    rep: int = 0,
) -> Job:
    """Build a Job, normalizing defaults exactly like ``cached_run`` does.

    ``cached_run(params=None)`` substitutes ``SimulationParams(accesses_per_core
    = DEFAULT_ACCESSES)``; the planner must mirror that so planned keys equal
    executed keys.
    """
    return Job(
        workload=workload,
        config_name=config_name,
        scale=runner_mod.DEFAULT_SCALE if scale is None else scale,
        params=params
        or SimulationParams(accesses_per_core=runner_mod.DEFAULT_ACCESSES),
        rep=rep,
    )
