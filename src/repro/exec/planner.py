"""Deterministic campaign planner: experiments → deduped job list.

Every experiment driver in :mod:`repro.harness.experiments` carries a
``.plan(params)`` attribute declaring the ``(workload, config, params)``
runs it will request from the result cache (``tests/test_exec_planner.py``
holds the two in lock-step).  The planner expands a list of experiment
keys into :class:`~repro.exec.job.Job` objects and dedupes jobs shared
across figures — e.g. the ``base`` baseline appears in almost every
figure but is simulated once per workload — producing the flat frontier
of an (embarrassingly parallel) job DAG whose only join is the final
table rendering.

Plan order is deterministic: experiment-registry order, then each
experiment's declared order, first occurrence winning on dedupe.  The
scheduler preserves it, which is how parallel campaigns stay bit-identical
to serial ones.
"""

from __future__ import annotations

import dataclasses
from dataclasses import dataclass, field
from typing import Dict, Iterable, List, Optional

from repro.exec.job import Job, derive_rep_seed, make_job
from repro.sim.engine import SimulationParams


@dataclass
class Plan:
    """An ordered, deduped list of jobs plus the per-experiment breakdown."""

    jobs: List[Job] = field(default_factory=list)
    by_experiment: Dict[str, List[Job]] = field(default_factory=dict)

    @property
    def n_jobs(self) -> int:
        return len(self.jobs)

    def describe(self) -> str:
        shared = sum(len(jobs) for jobs in self.by_experiment.values())
        return (
            f"{len(self.jobs)} unique job(s) across "
            f"{len(self.by_experiment)} experiment(s)"
            + (f" ({shared - len(self.jobs)} deduped)" if shared > len(self.jobs) else "")
        )


def _rep_job(job: Job, rep: int) -> Job:
    """Re-seed a planned job for repetition ``rep``.

    Repetition 0 is the job exactly as planned — same object, same cache
    key — which is the bit-identity guarantee for single-rep campaigns.
    Later reps swap in the derived seed (a different cache key, so the
    result cache and the service dedupe layer both see a distinct run)
    and stamp the rep label for the run table.
    """
    if rep == 0:
        return job
    seeded = dataclasses.replace(
        job.params, seed=derive_rep_seed(job.params.seed, rep)
    )
    return dataclasses.replace(job, params=seeded, rep=rep)


def plan_experiment(
    key: str,
    params: Optional[SimulationParams] = None,
    repetitions: int = 1,
) -> List[Job]:
    """The jobs one experiment needs, in declared order (deduped).

    Experiments without a ``.plan`` attribute (``fig4`` runs no
    simulations) plan to an empty list and simply execute serially.
    With ``repetitions > 1`` each declared run is expanded once per
    repetition (rep-major order after the declared order), every rep
    beyond the first re-seeded via :func:`derive_rep_seed`.
    """
    from repro.harness.experiments import EXPERIMENTS

    try:
        _title, fn = EXPERIMENTS[key]
    except KeyError:
        raise KeyError(f"unknown experiment {key!r}") from None
    if repetitions < 1:
        raise ValueError(f"repetitions must be >= 1, got {repetitions}")
    planner = getattr(fn, "plan", None)
    if planner is None:
        return []
    base = [
        make_job(workload, config_name, params=run_params)
        for workload, config_name, run_params in planner(params)
    ]
    base = list(dict.fromkeys(base))
    if repetitions == 1:
        return base
    jobs = [
        _rep_job(job, rep) for rep in range(repetitions) for job in base
    ]
    return list(dict.fromkeys(jobs))


def build_plan(
    keys: Iterable[str],
    params: Optional[SimulationParams] = None,
    repetitions: int = 1,
) -> Plan:
    """Expand ``keys`` into a deduped plan (shared jobs scheduled once)."""
    plan = Plan()
    ordered: Dict[Job, None] = {}
    for key in keys:
        jobs = plan_experiment(key, params, repetitions)
        plan.by_experiment[key] = jobs
        for job in jobs:
            ordered.setdefault(job, None)
    plan.jobs = list(ordered)
    return plan
