"""Campaign progress reporting: done / running / failed counts plus ETA.

Progress goes to *stderr* so the tables an experiment prints to stdout
stay byte-identical between serial and parallel runs (and between runs
with and without a TTY attached).
"""

from __future__ import annotations

import sys
import time
from dataclasses import asdict, dataclass, fields
from typing import Dict, Optional, TextIO


@dataclass
class ProgressSnapshot:
    """One campaign heartbeat: the single struct every renderer shares.

    The scheduler's progress callback, the CLI progress line, and the
    campaign service's NDJSON event stream all carry this dataclass, so
    "what the terminal shows" and "what a remote client streams" cannot
    drift.  ``cache_hit_pct``, ``p50_wall_ms``, ``p95_wall_ms``, and
    ``ops_per_sec`` come from the producer's metrics registry
    (``exec.jobs.*`` / ``exec.job.wall_ms``); they stay None when the
    producer predates the registry, and the formatter then omits their
    segments.
    """

    done: int
    running: int
    failed: int
    total: int
    cached: int = 0
    eta_seconds: Optional[float] = None
    label: str = ""
    cache_hit_pct: Optional[float] = None
    p50_wall_ms: Optional[float] = None
    p95_wall_ms: Optional[float] = None
    ops_per_sec: Optional[float] = None
    elapsed_s: Optional[float] = None

    def to_dict(self) -> Dict[str, object]:
        """JSON-ready payload (the service's ``progress`` NDJSON event)."""
        return asdict(self)

    @classmethod
    def from_dict(cls, payload: Dict[str, object]) -> "ProgressSnapshot":
        """Rebuild from :meth:`to_dict` output, ignoring foreign keys (a
        newer daemon may stream fields an older client doesn't know)."""
        known = {f.name for f in fields(cls)}
        return cls(**{k: v for k, v in payload.items() if k in known})


def format_duration(seconds: Optional[float]) -> str:
    """``h:mm:ss`` / ``m:ss`` (``--:--`` for unknown) — shared by the
    progress line's ETA and the ``cli top`` uptime column."""
    if seconds is None:
        return "--:--"
    seconds = max(0, int(round(seconds)))
    minutes, secs = divmod(seconds, 60)
    hours, minutes = divmod(minutes, 60)
    if hours:
        return f"{hours}:{minutes:02d}:{secs:02d}"
    return f"{minutes}:{secs:02d}"


# historical private name, kept for in-tree callers
_fmt_eta = format_duration


def format_progress(snap: ProgressSnapshot) -> str:
    """``jobs 12/40 · 4 running · 1 failed · eta 0:42 (mcf × dice)``"""
    parts = [
        f"jobs {snap.done}/{snap.total}",
        f"{snap.running} running",
        f"{snap.failed} failed",
        f"eta {_fmt_eta(snap.eta_seconds)}",
    ]
    if snap.cache_hit_pct is not None:
        parts.append(f"cache {snap.cache_hit_pct:.0f}%")
    if snap.ops_per_sec is not None:
        parts.append(f"{snap.ops_per_sec:.1f} jobs/s")
    if snap.p50_wall_ms is not None:
        parts.append(f"p50 {snap.p50_wall_ms / 1000.0:.1f}s")
    if snap.p95_wall_ms is not None:
        parts.append(f"p95 {snap.p95_wall_ms / 1000.0:.1f}s")
    line = " · ".join(parts)
    if snap.label:
        line += f" ({snap.label})"
    return line


class ProgressPrinter:
    """Render scheduler snapshots as a single updating line (TTY) or a
    throttled trickle of lines (logs/CI), plus a final summary."""

    def __init__(
        self,
        stream: TextIO = sys.stderr,
        *,
        min_interval: float = 2.0,
    ) -> None:
        self.stream = stream
        self.min_interval = min_interval
        self._isatty = bool(getattr(stream, "isatty", lambda: False)())
        # None (not 0.0): time.monotonic()'s epoch is arbitrary — on a
        # freshly booted machine it is small enough that `now - 0.0 <
        # min_interval` wrongly throttles the very first snapshot.
        self._last_emit: Optional[float] = None
        self._last: Optional[ProgressSnapshot] = None

    def __call__(self, snap: ProgressSnapshot) -> None:
        self._last = snap
        now = time.monotonic()
        final = snap.done + snap.failed >= snap.total
        if (
            not final
            and self._last_emit is not None
            and now - self._last_emit < self.min_interval
        ):
            return
        self._last_emit = now
        line = format_progress(snap)
        if self._isatty:
            self.stream.write("\r\x1b[2K" + line)
            self.stream.flush()
        else:
            print(line, file=self.stream, flush=True)

    def finish(self) -> None:
        """Terminate the updating line and print the cache-hit summary."""
        if self._isatty and self._last is not None:
            self.stream.write("\n")
        snap = self._last
        if snap is None:
            return
        executed = snap.done - snap.cached
        hit_pct = (
            snap.cache_hit_pct
            if snap.cache_hit_pct is not None
            else (100.0 * snap.cached / snap.total if snap.total else 100.0)
        )
        line = (
            f"jobs: {snap.total} total · {snap.cached} from cache · "
            f"{executed} run · {snap.failed} failed "
            f"(cache hits: {hit_pct:.0f}%)"
        )
        if snap.p50_wall_ms is not None:
            line += f" · p50 {snap.p50_wall_ms / 1000.0:.1f}s/job"
        print(line, file=self.stream, flush=True)
