"""Parallel execution engine: jobs, planning, and multiprocess scheduling.

The subsystem that turns a figure-regeneration campaign from a serial
loop into a sharded, resumable, deterministic fan-out:

* :mod:`repro.exec.job` — the unit of work (workload × config × params)
  with a stable cache key;
* :mod:`repro.exec.planner` — expands experiments into a deduped job
  list in deterministic order;
* :mod:`repro.exec.scheduler` — the ``ProcessPoolExecutor`` worker pool,
  with per-job retry/timeout and drain-on-failure semantics;
* :mod:`repro.exec.cache` — the concurrency-safe sharded result store
  backing the harness result cache;
* :mod:`repro.exec.progress` — done/running/failed/ETA reporting.
"""

from repro.exec.cache import ShardedResultCache
from repro.exec.job import Job, make_job
from repro.exec.planner import Plan, build_plan, plan_experiment
from repro.exec.progress import ProgressPrinter, ProgressSnapshot, format_progress
from repro.exec.scheduler import (
    JobOutcome,
    resolve_jobs,
    run_configs,
    run_jobs,
)

__all__ = [
    "Job",
    "JobOutcome",
    "Plan",
    "ProgressPrinter",
    "ProgressSnapshot",
    "ShardedResultCache",
    "build_plan",
    "format_progress",
    "make_job",
    "plan_experiment",
    "resolve_jobs",
    "run_configs",
    "run_jobs",
]
