"""Parallel execution engine: jobs, planning, and supervised scheduling.

The subsystem that turns a figure-regeneration campaign from a serial
loop into a sharded, resumable, deterministic fan-out:

* :mod:`repro.exec.job` — the unit of work (workload × config × params)
  with a stable cache key;
* :mod:`repro.exec.planner` — expands experiments into a deduped job
  list in deterministic order;
* :mod:`repro.exec.scheduler` — the ``ProcessPoolExecutor`` worker pool,
  with per-job retry/timeout and drain-on-failure semantics;
* :mod:`repro.exec.supervisor` — watchdog deadlines, broken-pool
  rebuild + requeue, poison-job quarantine, result validation, and
  graceful SIGTERM/SIGINT shutdown around the pool;
* :mod:`repro.exec.cache` — the concurrency-safe sharded result store
  backing the harness result cache, with per-shard write circuit
  breakers;
* :mod:`repro.exec.progress` — done/running/failed/ETA reporting.
"""

from repro.exec.cache import (
    CacheHealth,
    ShardedResultCache,
    cache_health,
    reset_cache_health,
)
from repro.exec.job import Job, make_job
from repro.exec.planner import Plan, build_plan, plan_experiment
from repro.exec.progress import ProgressPrinter, ProgressSnapshot, format_progress
from repro.exec.scheduler import (
    JobOutcome,
    last_report,
    resolve_jobs,
    run_configs,
    run_jobs,
)
from repro.exec.supervisor import (
    CorruptResultError,
    ShutdownFlag,
    SupervisionReport,
    SupervisorPolicy,
    graceful_signals,
    validate_result,
)

__all__ = [
    "CacheHealth",
    "CorruptResultError",
    "Job",
    "JobOutcome",
    "Plan",
    "ProgressPrinter",
    "ProgressSnapshot",
    "ShardedResultCache",
    "ShutdownFlag",
    "SupervisionReport",
    "SupervisorPolicy",
    "build_plan",
    "cache_health",
    "format_progress",
    "graceful_signals",
    "last_report",
    "make_job",
    "plan_experiment",
    "reset_cache_health",
    "resolve_jobs",
    "run_configs",
    "run_jobs",
    "validate_result",
]
