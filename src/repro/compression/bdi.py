"""Base-Delta-Immediate compression (Pekhimenko et al., PACT 2012).

BDI exploits low dynamic range: a line is encoded as one base value plus an
array of narrow deltas.  The standard encodings pair a base width of 8, 4 or
2 bytes with a delta width of 1, 2 or 4 bytes; special encodings handle the
all-zero line and the repeated-value line.  BDI additionally keeps a second
implicit base of zero, so a line mixing small immediates with large pointers
still compresses (each element carries a 1-bit base selector).

Encoded data size follows the canonical BDI accounting: base + deltas
(encoding selector and base-selector mask live in the tag's metadata bits,
which the DICE set format provisions — Fig 5's "9 metadata bits").  That
yields the published sizes: base8-delta1 = 16 B, base4-delta1 = 20 B,
base8-delta2 = 24 B, base2-delta1 = 34 B, base4-delta2 = 36 B,
base8-delta4 = 40 B.  The paper's threshold story depends on these numbers:
"BDI often compresses a single line to 36B, but double-line compresses it to
68B" (Sec 6.2) — i.e. base4-delta2 with a shared base: 36 + (36 - 4) = 68.
"""

from __future__ import annotations

import struct
from dataclasses import dataclass
from typing import List, Optional, Tuple

from repro.compression.base import CompressedLine, Compressor, check_line
from repro.config import LINE_SIZE

# (base_bytes, delta_bytes) encodings, tried in order of resulting size.
_ENCODINGS: Tuple[Tuple[int, int], ...] = (
    (8, 1),
    (8, 2),
    (8, 4),
    (4, 1),
    (4, 2),
    (2, 1),
)

# Every encoding has a fixed, distinct size (base + delta * elements), so
# scanning them smallest-first lets the size kernel stop at the first
# feasible one: it is the minimum `best_encoding` would find.
_ENCODINGS_BY_SIZE: Tuple[Tuple[int, int, int], ...] = tuple(
    sorted(
        ((b, d, b + d * (LINE_SIZE // b)) for b, d in _ENCODINGS),
        key=lambda entry: entry[2],
    )
)

_UNPACKERS = {
    8: struct.Struct("<8Q").unpack,
    4: struct.Struct("<16I").unpack,
    2: struct.Struct("<32H").unpack,
}

_ZERO_LINE = bytes(LINE_SIZE)


@dataclass(frozen=True)
class BDIEncoding:
    """One successful BDI encoding of a line."""

    base_bytes: int
    delta_bytes: int
    base: int
    deltas: Tuple[int, ...]  # signed deltas from `base` or from zero
    from_zero: Tuple[bool, ...]  # base selector per element

    @property
    def num_elements(self) -> int:
        return LINE_SIZE // self.base_bytes

    @property
    def size(self) -> int:
        """Canonical BDI data size: base + deltas (metadata lives in tag bits)."""
        return self.base_bytes + self.delta_bytes * self.num_elements


def _elements(data: bytes, width: int) -> List[int]:
    return list(_UNPACKERS[width](data))


def _fits(delta: int, width: int) -> bool:
    lo = -(1 << (8 * width - 1))
    hi = (1 << (8 * width - 1)) - 1
    return lo <= delta <= hi


def try_encode(
    data: bytes, base_bytes: int, delta_bytes: int, base: Optional[int] = None
) -> Optional[BDIEncoding]:
    """Attempt one (base, delta) encoding; returns None if any element fails.

    ``base`` may be pinned by the caller (used for pair compression with a
    shared base); otherwise the first non-zero-delta element is the base.
    """
    values = _elements(data, base_bytes)
    chosen = base
    deltas: List[int] = []
    from_zero: List[bool] = []
    for v in values:
        if _fits(v, delta_bytes):  # compresses against the implicit zero base
            deltas.append(v)
            from_zero.append(True)
            continue
        if chosen is None:
            chosen = v
        d = v - chosen
        if not _fits(d, delta_bytes):
            return None
        deltas.append(d)
        from_zero.append(False)
    return BDIEncoding(
        base_bytes=base_bytes,
        delta_bytes=delta_bytes,
        base=chosen if chosen is not None else 0,
        deltas=tuple(deltas),
        from_zero=tuple(from_zero),
    )


def best_encoding(data: bytes) -> Optional[BDIEncoding]:
    """Smallest successful non-special BDI encoding, or None."""
    best: Optional[BDIEncoding] = None
    for base_bytes, delta_bytes in _ENCODINGS:
        enc = try_encode(data, base_bytes, delta_bytes)
        if enc is not None and (best is None or enc.size < best.size):
            best = enc
    return best


def _scan_encoding(
    data: bytes, base_bytes: int, delta_bytes: int
) -> Tuple[bool, int]:
    """Feasibility scan mirroring :func:`try_encode` without materializing.

    Returns ``(feasible, base)``; the base is the first element that does
    not compress against the implicit zero base (0 when every element
    does), exactly the base ``try_encode`` would choose.
    """
    lo = -(1 << (8 * delta_bytes - 1))
    hi = -lo - 1
    chosen: Optional[int] = None
    for v in _UNPACKERS[base_bytes](data):
        if lo <= v <= hi:  # compresses against the implicit zero base
            continue
        if chosen is None:
            chosen = v
            continue
        d = v - chosen
        if d < lo or d > hi:
            return False, 0
    return True, chosen if chosen is not None else 0


def best_encoding_size(data: bytes) -> Optional[int]:
    """Size of the smallest feasible non-special encoding, or None.

    Integer-only twin of ``best_encoding(data).size``: encodings are
    scanned smallest-first, so the first feasible one is the minimum.
    """
    for base_bytes, delta_bytes, size in _ENCODINGS_BY_SIZE:
        feasible, _base = _scan_encoding(data, base_bytes, delta_bytes)
        if feasible:
            return size
    return None


def best_encoding_params(data: bytes) -> Optional[Tuple[int, int, int, int]]:
    """(base_bytes, delta_bytes, base, size) of the smallest encoding.

    The size-only counterpart of :func:`best_encoding` for callers that
    also need the base value (pair compression pins the partner line to
    it) but not the delta arrays.
    """
    for base_bytes, delta_bytes, size in _ENCODINGS_BY_SIZE:
        feasible, base = _scan_encoding(data, base_bytes, delta_bytes)
        if feasible:
            return base_bytes, delta_bytes, base, size
    return None


def pinned_base_fits(
    data: bytes, base_bytes: int, delta_bytes: int, base: int
) -> bool:
    """True when ``data`` encodes with the given widths and a pinned base.

    Mirrors ``try_encode(data, base_bytes, delta_bytes, base=base)``'s
    feasibility without building the delta tuples.
    """
    lo = -(1 << (8 * delta_bytes - 1))
    hi = -lo - 1
    for v in _UNPACKERS[base_bytes](data):
        if lo <= v <= hi:
            continue
        d = v - base
        if d < lo or d > hi:
            return False
    return True


class BDICompressor(Compressor):
    """Base-Delta-Immediate with zero-line and repeated-value specials."""

    name = "bdi"

    def compress(self, data: bytes) -> CompressedLine:
        check_line(data)
        if data == _ZERO_LINE:
            return CompressedLine(self.name, 1, ("zero",))
        if data == data[:8] * 8:
            return CompressedLine(self.name, 8, ("rep8", data[:8]))
        enc = best_encoding(data)
        if enc is not None and enc.size < LINE_SIZE:
            return CompressedLine(self.name, enc.size, ("bdi", enc))
        return CompressedLine(self.name, LINE_SIZE, ("raw", data))

    def _size_kernel(self, data: bytes) -> int:
        """Encoded size in bytes; mirrors ``compress``'s special-case order."""
        if data == _ZERO_LINE:
            return 1
        if data == data[:8] * 8:
            return 8
        size = best_encoding_size(data)
        if size is not None and size < LINE_SIZE:
            return size
        return LINE_SIZE

    def decompress(self, line: CompressedLine) -> bytes:
        if line.algorithm != self.name:
            raise ValueError(f"not a BDI line: {line.algorithm}")
        kind = line.payload[0]
        if kind == "zero":
            return bytes(LINE_SIZE)
        if kind == "rep8":
            return line.payload[1] * 8
        if kind == "raw":
            return line.payload[1]
        if kind == "bdi":
            return decode(line.payload[1])
        raise ValueError(f"unknown BDI payload kind {kind!r}")


def decode(enc: BDIEncoding) -> bytes:
    """Reconstruct line bytes from a BDI encoding."""
    out = bytearray()
    mask = (1 << (8 * enc.base_bytes)) - 1
    for delta, zero_based in zip(enc.deltas, enc.from_zero):
        value = delta if zero_based else enc.base + delta
        out += (value & mask).to_bytes(enc.base_bytes, "little")
    return bytes(out)
