"""Zero-Content Augmented compression (Dusser et al., ICS 2009).

ZCA only recognizes the all-zero line; everything else is stored raw.  It is
part of the low-latency pool the paper cites (Sec 7.1) and serves as the
simplest member of the `Compressor` family — useful both as a baseline in
ablations and as a fast pre-check in the hybrid.
"""

from __future__ import annotations

from repro.compression.base import CompressedLine, Compressor, check_line
from repro.config import LINE_SIZE

_ZERO_LINE = bytes(LINE_SIZE)


class ZCACompressor(Compressor):
    """Zero-content compression: zero lines cost (almost) nothing."""

    name = "zca"

    def compress(self, data: bytes) -> CompressedLine:
        check_line(data)
        if data == _ZERO_LINE:
            return CompressedLine(self.name, 1, None)
        return CompressedLine(self.name, LINE_SIZE, data)

    def _size_kernel(self, data: bytes) -> int:
        return 1 if data == _ZERO_LINE else LINE_SIZE

    def decompress(self, line: CompressedLine) -> bytes:
        if line.algorithm != self.name:
            raise ValueError(f"not a ZCA line: {line.algorithm}")
        if line.payload is None:
            return bytes(LINE_SIZE)
        return line.payload
