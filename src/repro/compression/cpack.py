"""C-PACK cache compression (Chen et al., TVLSI 2010).

A dictionary-based scheme the paper lists among usable low-latency
algorithms (Sec 7.1: "DICE is orthogonal to the type of data compression
scheme used ... including ones that employ dictionary-based compression").
Words are matched against a small FIFO dictionary built on the fly:

========  =================================  ============
code      meaning                            output bits
========  =================================  ============
``00``    zero word                          2
``01``    uncompressed word                  2 + 32
``10``    full dictionary match              2 + 4
``1100``  partial match, low 2 bytes differ  4 + 4 + 16
``1101``  zero-extended byte                 4 + 8
``1110``  partial match, low byte differs    4 + 4 + 8
========  ============================================

Unmatched and partially matched words are pushed into the 16-entry FIFO
dictionary, mirroring the hardware pipeline.
"""

from __future__ import annotations

import struct
from typing import List, Tuple

from repro.compression.base import CompressedLine, Compressor, check_line
from repro.config import LINE_SIZE

_DICT_ENTRIES = 16

_ZERO = "00"
_UNCOMPRESSED = "01"
_FULL_MATCH = "10"
_PARTIAL_HI2 = "1100"
_ZERO_BYTE = "1101"
_PARTIAL_HI3 = "1110"

_CODE_BITS = {
    _ZERO: 2,
    _UNCOMPRESSED: 2 + 32,
    _FULL_MATCH: 2 + 4,
    _PARTIAL_HI2: 4 + 4 + 16,
    _ZERO_BYTE: 4 + 8,
    _PARTIAL_HI3: 4 + 4 + 8,
}

_PUSH_CODES = frozenset((_UNCOMPRESSED, _PARTIAL_HI2, _PARTIAL_HI3))

_UNPACK_WORDS = struct.Struct("<16I").unpack


class CPackCompressor(Compressor):
    """C-PACK with a 16-entry FIFO dictionary."""

    name = "cpack"

    def compress(self, data: bytes) -> CompressedLine:
        check_line(data)
        words = _UNPACK_WORDS(data)
        dictionary: List[int] = []
        tokens: List[Tuple[str, ...]] = []
        bits = 0
        for word in words:
            token = self._encode_word(word, dictionary)
            tokens.append(token)
            bits += _CODE_BITS[token[0]]
            if token[0] in _PUSH_CODES:
                self._push(dictionary, word)
        size = min(LINE_SIZE, (bits + 7) // 8)
        return CompressedLine(self.name, size, tuple(tokens))

    def _size_kernel(self, data: bytes) -> int:
        """Encoded size: the same dictionary walk, counting bits only."""
        dictionary: List[int] = []
        code_bits = _CODE_BITS
        match_word = self._match_word
        bits = 0
        for word in _UNPACK_WORDS(data):
            code, _index = match_word(word, dictionary)
            bits += code_bits[code]
            if code in _PUSH_CODES:
                self._push(dictionary, word)
        return min(LINE_SIZE, (bits + 7) // 8)

    @staticmethod
    def _push(dictionary: List[int], word: int) -> None:
        dictionary.append(word)
        if len(dictionary) > _DICT_ENTRIES:
            dictionary.pop(0)

    @staticmethod
    def _match_word(word: int, dictionary: List[int]) -> Tuple[str, int]:
        """(code, dictionary index) for one word; the shared matcher.

        Both ``compress`` and ``_size_kernel`` route through this walk, so
        the FIFO evolution — and therefore every later match — cannot
        drift between the two paths.
        """
        if word == 0:
            return _ZERO, -1
        if word <= 0xFF:
            return _ZERO_BYTE, -1
        for index in range(len(dictionary) - 1, -1, -1):
            entry = dictionary[index]
            if entry == word:
                return _FULL_MATCH, index
            if entry >> 8 == word >> 8:
                return _PARTIAL_HI3, index
            if entry >> 16 == word >> 16:
                return _PARTIAL_HI2, index
        return _UNCOMPRESSED, -1

    @staticmethod
    def _encode_word(word: int, dictionary: List[int]) -> Tuple[str, ...]:
        code, index = CPackCompressor._match_word(word, dictionary)
        if code == _ZERO:
            return (code,)
        if code in (_ZERO_BYTE, _UNCOMPRESSED):
            return (code, word)
        if code == _FULL_MATCH:
            return (code, index)
        if code == _PARTIAL_HI3:
            return (code, index, word & 0xFF)
        return (code, index, word & 0xFFFF)

    def decompress(self, line: CompressedLine) -> bytes:
        if line.algorithm != self.name:
            raise ValueError(f"not a C-PACK line: {line.algorithm}")
        dictionary: List[int] = []
        words: List[int] = []
        for token in line.payload:
            code = token[0]
            if code == _ZERO:
                word = 0
            elif code == _ZERO_BYTE:
                word = token[1]
            elif code == _UNCOMPRESSED:
                word = token[1]
            elif code == _FULL_MATCH:
                word = dictionary[token[1]]
            elif code == _PARTIAL_HI3:
                word = (dictionary[token[1]] & ~0xFF) | token[2]
            elif code == _PARTIAL_HI2:
                word = (dictionary[token[1]] & ~0xFFFF) | token[2]
            else:
                raise ValueError(f"unknown C-PACK code {code!r}")
            words.append(word)
            if code in (_UNCOMPRESSED, _PARTIAL_HI2, _PARTIAL_HI3):
                self._push(dictionary, word)
        if len(words) != LINE_SIZE // 4:
            raise ValueError("corrupt C-PACK payload")
        return struct.pack("<16I", *words)
