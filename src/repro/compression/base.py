"""Compressor interface shared by every algorithm in the pool."""

from __future__ import annotations

from abc import ABC, abstractmethod
from dataclasses import dataclass

from repro.config import LINE_SIZE


@dataclass(frozen=True)
class CompressedLine:
    """Result of compressing one cache line.

    ``payload`` is an opaque encoding sufficient for ``Compressor.decompress``
    to reconstruct the original bytes; ``size`` is the number of bytes the
    hardware encoding would occupy (what the set-packing logic budgets), which
    is deliberately independent of the Python payload representation.
    """

    algorithm: str
    size: int
    payload: object

    def __post_init__(self) -> None:
        if not 0 <= self.size <= LINE_SIZE:
            raise ValueError(f"compressed size {self.size} out of range")


class Compressor(ABC):
    """A low-latency line compressor (FPC, BDI, ZCA, or a hybrid of them)."""

    name: str = "abstract"

    @abstractmethod
    def compress(self, data: bytes) -> CompressedLine:
        """Compress one 64 B line.  Never fails: incompressible data is
        returned stored (size == 64)."""

    @abstractmethod
    def decompress(self, line: CompressedLine) -> bytes:
        """Reconstruct the original 64 bytes from ``compress``'s output."""

    def compressed_size(self, data: bytes) -> int:
        """Convenience: the byte budget this line needs in a set."""
        return self.compress(data).size


def check_line(data: bytes) -> None:
    """Validate input is exactly one cache line."""
    if len(data) != LINE_SIZE:
        raise ValueError(f"expected a {LINE_SIZE}-byte line, got {len(data)}")
