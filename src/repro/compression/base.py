"""Compressor interface shared by every algorithm in the pool.

Two hot-path facilities live here alongside the abstract interface:

* **Size-only kernels** — ``compressed_size`` routes to a per-codec
  ``_size_kernel`` that computes the encoded byte count with integer
  arithmetic only (no token tuples, no :class:`CompressedLine`
  allocation).  Every kernel is property-tested to agree exactly with
  ``compress(data).size`` (``tests/test_codec_equivalence.py``), so the
  packing logic can budget space without paying for payloads it never
  reads.
* **Content-addressed memoization** — compression is deterministic and
  pure, so each compressor carries a bounded LRU :class:`CodecMemo`
  keyed by the line bytes.  The simulator compresses the same line on
  install, writeback, and probe paths; the memo makes the repeats a
  dict hit.  Capacity comes from ``REPRO_CODEC_MEMO`` (``0`` disables
  memoization entirely); results are bit-identical either way.
"""

from __future__ import annotations

import os
from abc import ABC, abstractmethod
from dataclasses import dataclass
from typing import Dict, Optional

from repro.config import LINE_SIZE

DEFAULT_MEMO_CAPACITY = 1 << 16
"""Per-compressor memo entries unless ``REPRO_CODEC_MEMO`` overrides."""


def memo_capacity_from_env(default: int = DEFAULT_MEMO_CAPACITY) -> int:
    """Memo capacity from ``REPRO_CODEC_MEMO`` (``0`` disables the memo)."""
    raw = os.environ.get("REPRO_CODEC_MEMO")
    if raw is None or raw == "":
        return default
    try:
        value = int(raw)
    except ValueError:
        raise ValueError(
            f"REPRO_CODEC_MEMO must be an integer, got {raw!r}"
        ) from None
    return max(0, value)


class CodecMemo:
    """Bounded LRU memo for per-line compression results.

    Two stores share one stat block: ``sizes`` (line bytes -> encoded
    byte count, fed by ``compressed_size``) and ``lines`` (line bytes ->
    :class:`CompressedLine`, fed by memoizing compressors like the
    hybrid).  Keys reference the caller's ``bytes`` objects, so the memo
    costs dict overhead, not data copies.
    """

    __slots__ = ("capacity", "hits", "misses", "evictions", "_sizes", "_lines")

    def __init__(self, capacity: int = DEFAULT_MEMO_CAPACITY) -> None:
        if capacity < 0:
            raise ValueError("memo capacity must be >= 0")
        self.capacity = capacity
        self.hits = 0
        self.misses = 0
        self.evictions = 0
        self._sizes: Dict[bytes, int] = {}
        self._lines: Dict[bytes, "CompressedLine"] = {}

    def __len__(self) -> int:
        return len(self._sizes) + len(self._lines)

    def get_size(self, data: bytes) -> Optional[int]:
        sizes = self._sizes
        size = sizes.get(data)
        if size is None:
            self.misses += 1
            return None
        self.hits += 1
        # refresh recency: dicts preserve insertion order, so re-inserting
        # moves the key to the young end of the eviction queue
        del sizes[data]
        sizes[data] = size
        return size

    def put_size(self, data: bytes, size: int) -> None:
        sizes = self._sizes
        if len(sizes) >= self.capacity:
            del sizes[next(iter(sizes))]
            self.evictions += 1
        sizes[data] = size

    def get_line(self, data: bytes) -> Optional["CompressedLine"]:
        lines = self._lines
        line = lines.get(data)
        if line is None:
            self.misses += 1
            return None
        self.hits += 1
        del lines[data]
        lines[data] = line
        return line

    def put_line(self, data: bytes, line: "CompressedLine") -> None:
        lines = self._lines
        if len(lines) >= self.capacity:
            del lines[next(iter(lines))]
            self.evictions += 1
        lines[data] = line

    def clear(self) -> None:
        """Drop entries (stats survive); used when codec state changes."""
        self._sizes.clear()
        self._lines.clear()

    def stats(self) -> Dict[str, int]:
        return {
            "hits": self.hits,
            "misses": self.misses,
            "evictions": self.evictions,
            "entries": len(self),
        }


@dataclass(frozen=True)
class CompressedLine:
    """Result of compressing one cache line.

    ``payload`` is an opaque encoding sufficient for ``Compressor.decompress``
    to reconstruct the original bytes; ``size`` is the number of bytes the
    hardware encoding would occupy (what the set-packing logic budgets), which
    is deliberately independent of the Python payload representation.
    """

    algorithm: str
    size: int
    payload: object

    def __post_init__(self) -> None:
        if not 0 <= self.size <= LINE_SIZE:
            raise ValueError(f"compressed size {self.size} out of range")


class Compressor(ABC):
    """A low-latency line compressor (FPC, BDI, ZCA, or a hybrid of them)."""

    name: str = "abstract"

    # Lazily replaced by a per-instance CodecMemo on first use; the class
    # default keeps subclasses free of mandatory __init__ chaining.
    _memo: Optional[CodecMemo] = None

    @abstractmethod
    def compress(self, data: bytes) -> CompressedLine:
        """Compress one 64 B line.  Never fails: incompressible data is
        returned stored (size == 64)."""

    @abstractmethod
    def decompress(self, line: CompressedLine) -> bytes:
        """Reconstruct the original 64 bytes from ``compress``'s output."""

    def _size_kernel(self, data: bytes) -> int:
        """Encoded byte count for one validated line.

        Subclasses override with an integer-only computation; the default
        falls back to full compression so third-party compressors keep
        working unchanged.
        """
        return self.compress(data).size

    def _memo_capacity(self) -> int:
        """Capacity for this instance's memo (env knob hook)."""
        return memo_capacity_from_env()

    @property
    def memo(self) -> CodecMemo:
        """This compressor's memo, created on first access."""
        memo = self._memo
        if memo is None:
            memo = CodecMemo(self._memo_capacity())
            self._memo = memo
        return memo

    def memo_stats(self) -> Dict[str, int]:
        """Memo hit/miss/eviction counters (zeros when never used)."""
        memo = self._memo
        if memo is None:
            return {"hits": 0, "misses": 0, "evictions": 0, "entries": 0}
        return memo.stats()

    def compressed_size(self, data: bytes) -> int:
        """The byte budget this line needs in a set (memoized size kernel)."""
        memo = self._memo
        if memo is None:
            memo = self.memo
        if memo.capacity == 0:
            check_line(data)
            return self._size_kernel(data)
        size = memo.get_size(data)
        if size is None:
            check_line(data)
            size = self._size_kernel(data)
            memo.put_size(data, size)
        return size


def check_line(data: bytes) -> None:
    """Validate input is exactly one cache line."""
    if len(data) != LINE_SIZE:
        raise ValueError(f"expected a {LINE_SIZE}-byte line, got {len(data)}")
