"""Low-latency hardware compression algorithms used by the DRAM cache.

The paper compresses each 64 B line with both Frequent Pattern Compression
(FPC) and Base-Delta-Immediate (BDI) and keeps whichever is smaller
(Sec 4.2).  Spatially adjacent lines that are stored together may be
pair-compressed, sharing BDI bases and a tag (Sec 4.3 / Sec 6.2).
"""

from repro.compression.base import CompressedLine, Compressor
from repro.compression.bdi import BDICompressor
from repro.compression.cpack import CPackCompressor
from repro.compression.fpc import FPCCompressor
from repro.compression.fvc import FVCCompressor
from repro.compression.hybrid import HybridCompressor
from repro.compression.pair import pair_compressed_size
from repro.compression.zca import ZCACompressor

__all__ = [
    "CompressedLine",
    "Compressor",
    "BDICompressor",
    "CPackCompressor",
    "FPCCompressor",
    "FVCCompressor",
    "HybridCompressor",
    "ZCACompressor",
    "pair_compressed_size",
]
