"""Pair compression for spatially adjacent lines stored in the same set.

When BAI places lines 2i and 2i+1 in one set, the controller may compress
them together: they share BDI bases (Sec 4.2 "If two adjacent lines are
compressed together, we share tags and bases") and a single 4 B tag.  The
paper's headline packing rule follows: two adjacent lines co-compressed to
<= 68 B fit in one 72 B TAD (Fig 4, "Double<=68").

``pair_compressed_size`` returns the co-compressed data size for two lines,
which is never worse than the sum of their individual sizes.
"""

from __future__ import annotations

from typing import Optional, Tuple

from repro.compression.base import Compressor
from repro.compression.bdi import best_encoding_params, pinned_base_fits
from repro.config import LINE_SIZE

def _shared_base_size(a: bytes, b: bytes) -> Optional[int]:
    """Size of the pair when both lines BDI-encode against one shared base.

    The second line drops its copy of the base (Sec 4.2 base sharing), so a
    base4-delta2 pair costs 36 + 32 = 68 B — the paper's "Double<=68".

    Size-only: both halves use the same (base, delta) widths, so the pair
    costs ``size_a + (size_a - base_bytes)`` whenever the partner fits the
    pinned base — no delta arrays are ever materialized.
    """
    params = best_encoding_params(a)
    if params is None:
        return None
    base_bytes, delta_bytes, base, size_a = params
    if not pinned_base_fits(b, base_bytes, delta_bytes, base):
        return None
    return size_a + (size_a - base_bytes)


def pair_compressed_size(
    compressor: Compressor, a: bytes, b: bytes
) -> Tuple[int, bool]:
    """Co-compressed size of two adjacent lines and whether sharing helped.

    Returns ``(size, shared)``; ``size`` is at most the sum of the individual
    compressed sizes and at most 2 * LINE_SIZE.
    """
    size_a = compressor.compressed_size(a)
    size_b = compressor.compressed_size(b)
    independent = size_a + size_b
    shared = _shared_base_size(a, b)
    if shared is not None and shared < independent:
        return min(shared, 2 * LINE_SIZE), True
    return min(independent, 2 * LINE_SIZE), False
