"""Frequent Pattern Compression (Alameldeen & Wood, 2004).

FPC scans a line as 32-bit words and replaces each word by a 3-bit prefix
plus a variable-length residue when the word matches one of a small set of
frequently occurring patterns (zero runs, sign-extended narrow values,
repeated bytes, ...).  Decompression is a few cycles, which is why the paper
picks it for the DRAM-cache critical path (Sec 4.2).

Encoded sizes follow the original FPC pattern table; the total is rounded up
to whole bytes, matching how the set-packing logic budgets space.

The payload-building ``compress`` and the integer-only ``_size_kernel``
share the same classification helpers (``_zero_run``, ``_classify_pattern``)
so the two paths cannot drift; ``tests/test_codec_equivalence.py`` asserts
their equality over adversarial lines.
"""

from __future__ import annotations

import struct
from typing import List, Tuple

from repro.compression.base import CompressedLine, Compressor, check_line
from repro.config import LINE_SIZE

_WORDS_PER_LINE = LINE_SIZE // 4
_UNPACK_WORDS = struct.Struct("<16I").unpack

# (prefix name, residue bits)
_PAT_ZERO_RUN = "zero_run"  # 3-bit run length, for up to 8 zero words
_PAT_SE4 = "se4"
_PAT_SE8 = "se8"
_PAT_SE16 = "se16"
_PAT_HALF_ZERO = "half_zero"  # lower halfword zero-padded
_PAT_TWO_HALF_SE8 = "two_half_se8"  # each halfword is a sign-extended byte
_PAT_REP_BYTE = "rep_byte"
_PAT_RAW = "raw"

_RESIDUE_BITS = {
    _PAT_ZERO_RUN: 3,
    _PAT_SE4: 4,
    _PAT_SE8: 8,
    _PAT_SE16: 16,
    _PAT_HALF_ZERO: 16,
    _PAT_TWO_HALF_SE8: 16,
    _PAT_REP_BYTE: 8,
    _PAT_RAW: 32,
}

_PREFIX_BITS = 3

_ZERO_RUN_TOKEN_BITS = _PREFIX_BITS + _RESIDUE_BITS[_PAT_ZERO_RUN]

_MAX_ZERO_RUN = 8


def _sign_extends(value: int, bits: int) -> bool:
    """True if the signed 32-bit ``value`` fits in ``bits`` bits."""
    lo = -(1 << (bits - 1))
    hi = (1 << (bits - 1)) - 1
    return lo <= value <= hi


def _zero_run(words: Tuple[int, ...], start: int) -> int:
    """Length of the zero run beginning at ``start`` (capped at 8 words).

    Shared by ``compress`` and ``_size_kernel``: the 8-word cap is the
    3-bit run-length residue's ceiling, and both paths must agree on where
    a run ends or their token streams diverge.
    """
    run = 1
    while (
        start + run < _WORDS_PER_LINE
        and words[start + run] == 0
        and run < _MAX_ZERO_RUN
    ):
        run += 1
    return run


def _classify_pattern(word: int) -> str:
    """Pattern name for one non-zero 32-bit word (zero handled by runs).

    The single source of the FPC pattern thresholds: ``_classify`` layers
    residue extraction on top, and the size kernel maps the name straight
    to ``_RESIDUE_BITS``.
    """
    signed = word - (1 << 32) if word >= (1 << 31) else word
    if _sign_extends(signed, 4):
        return _PAT_SE4
    if _sign_extends(signed, 8):
        return _PAT_SE8
    if _sign_extends(signed, 16):
        return _PAT_SE16
    if word & 0xFFFF == 0:
        return _PAT_HALF_ZERO
    hi, lo = word >> 16, word & 0xFFFF
    hi_s = hi - (1 << 16) if hi >= (1 << 15) else hi
    lo_s = lo - (1 << 16) if lo >= (1 << 15) else lo
    if _sign_extends(hi_s, 8) and _sign_extends(lo_s, 8):
        return _PAT_TWO_HALF_SE8
    if word == (word & 0xFF) * 0x01010101:
        return _PAT_REP_BYTE
    return _PAT_RAW


# word -> encoded token bits, filled through _classify_pattern so the cache
# can never disagree with the classifier.  Words repeat heavily across lines
# (zero-adjacent immediates, pointers sharing high bits), so this turns the
# size kernel's per-word classification into one dict probe.
_WORD_BITS_CACHE: dict = {}
_WORD_BITS_CACHE_MAX = 1 << 18


def _word_bits(word: int) -> int:
    """Token bits (prefix + residue) for one non-zero word, cached."""
    bits = _WORD_BITS_CACHE.get(word)
    if bits is None:
        bits = _PREFIX_BITS + _RESIDUE_BITS[_classify_pattern(word)]
        if len(_WORD_BITS_CACHE) >= _WORD_BITS_CACHE_MAX:
            _WORD_BITS_CACHE.clear()
        _WORD_BITS_CACHE[word] = bits
    return bits


def _classify(word: int) -> Tuple[str, int]:
    """Return (pattern, residue) for one 32-bit word (zero handled by runs)."""
    pattern = _classify_pattern(word)
    if pattern == _PAT_SE4:
        return pattern, word & 0xF
    if pattern == _PAT_SE8:
        return pattern, word & 0xFF
    if pattern == _PAT_SE16:
        return pattern, word & 0xFFFF
    if pattern == _PAT_HALF_ZERO:
        return pattern, word >> 16
    if pattern == _PAT_TWO_HALF_SE8:
        return pattern, (((word >> 16) & 0xFF) << 8) | (word & 0xFF)
    if pattern == _PAT_REP_BYTE:
        return pattern, word & 0xFF
    return pattern, word


class FPCCompressor(Compressor):
    """Frequent Pattern Compression over 32-bit words."""

    name = "fpc"

    def compress(self, data: bytes) -> CompressedLine:
        check_line(data)
        words = _UNPACK_WORDS(data)
        tokens: List[Tuple[str, int]] = []
        bits = 0
        i = 0
        while i < _WORDS_PER_LINE:
            if words[i] == 0:
                run = _zero_run(words, i)
                tokens.append((_PAT_ZERO_RUN, run))
                i += run
            else:
                tokens.append(_classify(words[i]))
                i += 1
            pattern = tokens[-1][0]
            bits += _PREFIX_BITS + _RESIDUE_BITS[pattern]
        size = min(LINE_SIZE, (bits + 7) // 8)
        return CompressedLine(self.name, size, tuple(tokens))

    def _size_kernel(self, data: bytes) -> int:
        """Encoded size in bytes without materializing the token stream."""
        words = _UNPACK_WORDS(data)
        word_bits = _word_bits
        bits = 0
        i = 0
        while i < _WORDS_PER_LINE:
            word = words[i]
            if word == 0:
                i += _zero_run(words, i)
                bits += _ZERO_RUN_TOKEN_BITS
            else:
                bits += word_bits(word)
                i += 1
        return min(LINE_SIZE, (bits + 7) // 8)

    def decompress(self, line: CompressedLine) -> bytes:
        if line.algorithm != self.name:
            raise ValueError(f"not an FPC line: {line.algorithm}")
        words: List[int] = []
        for pattern, residue in line.payload:
            if pattern == _PAT_ZERO_RUN:
                words.extend([0] * residue)
            elif pattern == _PAT_SE4:
                words.append(_sx(residue, 4))
            elif pattern == _PAT_SE8:
                words.append(_sx(residue, 8))
            elif pattern == _PAT_SE16:
                words.append(_sx(residue, 16))
            elif pattern == _PAT_HALF_ZERO:
                words.append(residue << 16)
            elif pattern == _PAT_TWO_HALF_SE8:
                hi = _sx(residue >> 8, 8) & 0xFFFF
                lo = _sx(residue & 0xFF, 8) & 0xFFFF
                words.append((hi << 16) | lo)
            elif pattern == _PAT_REP_BYTE:
                words.append(residue * 0x01010101)
            elif pattern == _PAT_RAW:
                words.append(residue)
            else:
                raise ValueError(f"unknown FPC pattern {pattern!r}")
        if len(words) != _WORDS_PER_LINE:
            raise ValueError("corrupt FPC payload")
        return struct.pack("<16I", *words)


def _sx(value: int, bits: int) -> int:
    """Sign-extend ``bits``-wide ``value`` to an unsigned 32-bit word."""
    if value & (1 << (bits - 1)):
        value -= 1 << bits
    return value & 0xFFFFFFFF
