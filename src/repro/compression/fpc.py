"""Frequent Pattern Compression (Alameldeen & Wood, 2004).

FPC scans a line as 32-bit words and replaces each word by a 3-bit prefix
plus a variable-length residue when the word matches one of a small set of
frequently occurring patterns (zero runs, sign-extended narrow values,
repeated bytes, ...).  Decompression is a few cycles, which is why the paper
picks it for the DRAM-cache critical path (Sec 4.2).

Encoded sizes follow the original FPC pattern table; the total is rounded up
to whole bytes, matching how the set-packing logic budgets space.
"""

from __future__ import annotations

import struct
from typing import List, Tuple

from repro.compression.base import CompressedLine, Compressor, check_line
from repro.config import LINE_SIZE

_WORDS_PER_LINE = LINE_SIZE // 4

# (prefix name, residue bits)
_PAT_ZERO_RUN = "zero_run"  # 3-bit run length, for up to 8 zero words
_PAT_SE4 = "se4"
_PAT_SE8 = "se8"
_PAT_SE16 = "se16"
_PAT_HALF_ZERO = "half_zero"  # lower halfword zero-padded
_PAT_TWO_HALF_SE8 = "two_half_se8"  # each halfword is a sign-extended byte
_PAT_REP_BYTE = "rep_byte"
_PAT_RAW = "raw"

_RESIDUE_BITS = {
    _PAT_ZERO_RUN: 3,
    _PAT_SE4: 4,
    _PAT_SE8: 8,
    _PAT_SE16: 16,
    _PAT_HALF_ZERO: 16,
    _PAT_TWO_HALF_SE8: 16,
    _PAT_REP_BYTE: 8,
    _PAT_RAW: 32,
}

_PREFIX_BITS = 3


def _sign_extends(value: int, bits: int) -> bool:
    """True if the signed 32-bit ``value`` fits in ``bits`` bits."""
    lo = -(1 << (bits - 1))
    hi = (1 << (bits - 1)) - 1
    return lo <= value <= hi


def _classify(word: int) -> Tuple[str, int]:
    """Return (pattern, residue) for one 32-bit word (zero handled by runs)."""
    signed = word - (1 << 32) if word >= (1 << 31) else word
    if _sign_extends(signed, 4):
        return _PAT_SE4, word & 0xF
    if _sign_extends(signed, 8):
        return _PAT_SE8, word & 0xFF
    if _sign_extends(signed, 16):
        return _PAT_SE16, word & 0xFFFF
    if word & 0xFFFF == 0:
        return _PAT_HALF_ZERO, word >> 16
    hi, lo = word >> 16, word & 0xFFFF
    hi_s = hi - (1 << 16) if hi >= (1 << 15) else hi
    lo_s = lo - (1 << 16) if lo >= (1 << 15) else lo
    if _sign_extends(hi_s, 8) and _sign_extends(lo_s, 8):
        return _PAT_TWO_HALF_SE8, ((hi & 0xFF) << 8) | (lo & 0xFF)
    b = word & 0xFF
    if word == b * 0x01010101:
        return _PAT_REP_BYTE, b
    return _PAT_RAW, word


class FPCCompressor(Compressor):
    """Frequent Pattern Compression over 32-bit words."""

    name = "fpc"

    def compress(self, data: bytes) -> CompressedLine:
        check_line(data)
        words = struct.unpack("<16I", data)
        tokens: List[Tuple[str, int]] = []
        bits = 0
        i = 0
        while i < _WORDS_PER_LINE:
            if words[i] == 0:
                run = 1
                while (
                    i + run < _WORDS_PER_LINE
                    and words[i + run] == 0
                    and run < 8
                ):
                    run += 1
                tokens.append((_PAT_ZERO_RUN, run))
                i += run
            else:
                tokens.append(_classify(words[i]))
                i += 1
            pattern = tokens[-1][0]
            bits += _PREFIX_BITS + _RESIDUE_BITS[pattern]
        size = min(LINE_SIZE, (bits + 7) // 8)
        return CompressedLine(self.name, size, tuple(tokens))

    def decompress(self, line: CompressedLine) -> bytes:
        if line.algorithm != self.name:
            raise ValueError(f"not an FPC line: {line.algorithm}")
        words: List[int] = []
        for pattern, residue in line.payload:
            if pattern == _PAT_ZERO_RUN:
                words.extend([0] * residue)
            elif pattern == _PAT_SE4:
                words.append(_sx(residue, 4))
            elif pattern == _PAT_SE8:
                words.append(_sx(residue, 8))
            elif pattern == _PAT_SE16:
                words.append(_sx(residue, 16))
            elif pattern == _PAT_HALF_ZERO:
                words.append(residue << 16)
            elif pattern == _PAT_TWO_HALF_SE8:
                hi = _sx(residue >> 8, 8) & 0xFFFF
                lo = _sx(residue & 0xFF, 8) & 0xFFFF
                words.append((hi << 16) | lo)
            elif pattern == _PAT_REP_BYTE:
                words.append(residue * 0x01010101)
            elif pattern == _PAT_RAW:
                words.append(residue)
            else:
                raise ValueError(f"unknown FPC pattern {pattern!r}")
        if len(words) != _WORDS_PER_LINE:
            raise ValueError("corrupt FPC payload")
        return struct.pack("<16I", *words)


def _sx(value: int, bits: int) -> int:
    """Sign-extend ``bits``-wide ``value`` to an unsigned 32-bit word."""
    if value & (1 << (bits - 1)):
        value -= 1 << bits
    return value & 0xFFFFFFFF
