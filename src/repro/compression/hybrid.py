"""Hybrid FPC+BDI compressor used throughout the paper's evaluation.

Each line is compressed with every algorithm in the pool and the smallest
encoding wins (Sec 4.2: "We use both FPC and BDI, and compress with the
policy that gives better compression ratio").  A few bits recording the
winning algorithm live in the tag metadata, not in the data payload, so they
do not count against the line's data size.

Compression is deterministic and pure, so the hybrid memoizes results in
its :class:`~repro.compression.base.CodecMemo` — the simulator compresses
the same line on install, writeback and probe paths and the cache keeps
those calls cheap.  The size-only path (``compressed_size``) never builds
payloads at all: it takes the minimum of the pool members' integer size
kernels.
"""

from __future__ import annotations

from typing import Dict, Optional, Sequence, Tuple

from repro.compression.base import (
    CompressedLine,
    Compressor,
    check_line,
    memo_capacity_from_env,
)
from repro.compression.bdi import BDICompressor
from repro.compression.fpc import FPCCompressor
from repro.compression.zca import ZCACompressor

_SIZE_SENTINEL = 1 << 30  # upper bound seed for the pool minimum


class HybridCompressor(Compressor):
    """Best-of-pool compressor (default pool: ZCA, FPC, BDI)."""

    name = "hybrid"

    def __init__(
        self,
        pool: Optional[Sequence[Compressor]] = None,
        cache_size: int = 1 << 16,
    ) -> None:
        self.pool: Tuple[Compressor, ...] = tuple(
            pool if pool is not None else (ZCACompressor(), BDICompressor(), FPCCompressor())
        )
        if not self.pool:
            raise ValueError("compressor pool must not be empty")
        self._by_name: Dict[str, Compressor] = {c.name: c for c in self.pool}
        self._cache_size = cache_size

    def _memo_capacity(self) -> int:
        # REPRO_CODEC_MEMO wins; the legacy ``cache_size`` argument is the
        # per-instance default so existing callers keep their bound.
        return memo_capacity_from_env(self._cache_size)

    def compress(self, data: bytes) -> CompressedLine:
        memo = self._memo
        if memo is None:
            memo = self.memo
        if memo.capacity == 0:
            check_line(data)
            return self._best_line(data)
        line = memo.get_line(data)
        if line is None:
            check_line(data)
            line = self._best_line(data)
            memo.put_line(data, line)
        return line

    def _best_line(self, data: bytes) -> CompressedLine:
        best: Optional[CompressedLine] = None
        for compressor in self.pool:
            line = compressor.compress(data)
            if best is None or line.size < best.size:
                best = line
        return best

    def _size_kernel(self, data: bytes) -> int:
        best = _SIZE_SENTINEL
        for compressor in self.pool:
            size = compressor.compressed_size(data)
            if size < best:
                best = size
                if best <= 1:  # nothing encodes below one byte
                    break
        return best

    def memo_stats(self) -> Dict[str, int]:
        """Aggregate memo counters: this hybrid plus its pool members."""
        totals = super().memo_stats()
        for compressor in self.pool:
            for key, value in compressor.memo_stats().items():
                totals[key] += value
        return totals

    def decompress(self, line: CompressedLine) -> bytes:
        algo = self._by_name.get(line.algorithm)
        if algo is None:
            raise ValueError(f"no compressor named {line.algorithm!r} in pool")
        return algo.decompress(line)
