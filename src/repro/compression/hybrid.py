"""Hybrid FPC+BDI compressor used throughout the paper's evaluation.

Each line is compressed with every algorithm in the pool and the smallest
encoding wins (Sec 4.2: "We use both FPC and BDI, and compress with the
policy that gives better compression ratio").  A few bits recording the
winning algorithm live in the tag metadata, not in the data payload, so they
do not count against the line's data size.

Compression is deterministic and pure, so the hybrid memoizes recent results;
the simulator compresses the same line on install, writeback and probe paths
and the cache keeps those calls cheap.
"""

from __future__ import annotations

from typing import Dict, Optional, Sequence, Tuple

from repro.compression.base import CompressedLine, Compressor, check_line
from repro.compression.bdi import BDICompressor
from repro.compression.fpc import FPCCompressor
from repro.compression.zca import ZCACompressor


class HybridCompressor(Compressor):
    """Best-of-pool compressor (default pool: ZCA, FPC, BDI)."""

    name = "hybrid"

    def __init__(
        self,
        pool: Optional[Sequence[Compressor]] = None,
        cache_size: int = 1 << 16,
    ) -> None:
        self.pool: Tuple[Compressor, ...] = tuple(
            pool if pool is not None else (ZCACompressor(), BDICompressor(), FPCCompressor())
        )
        if not self.pool:
            raise ValueError("compressor pool must not be empty")
        self._by_name: Dict[str, Compressor] = {c.name: c for c in self.pool}
        self._cache: Dict[bytes, CompressedLine] = {}
        self._cache_size = cache_size

    def compress(self, data: bytes) -> CompressedLine:
        check_line(data)
        cached = self._cache.get(data)
        if cached is not None:
            return cached
        best = min((c.compress(data) for c in self.pool), key=lambda r: r.size)
        if len(self._cache) >= self._cache_size:
            self._cache.clear()
        self._cache[data] = best
        return best

    def decompress(self, line: CompressedLine) -> bytes:
        algo = self._by_name.get(line.algorithm)
        if algo is None:
            raise ValueError(f"no compressor named {line.algorithm!r} in pool")
        return algo.decompress(line)
