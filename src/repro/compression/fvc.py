"""Frequent Value Compression (Zhang, Yang & Gupta, ASPLOS 2000).

The paper's related work (Sec 7.1, ref [42]) includes value-centric
compression: a small table of globally frequent 32-bit values is learned
from the data stream; words matching a table entry are encoded by index,
everything else is stored verbatim with a flag bit.

Unlike FPC/BDI, FVC is *stateful across lines* — its value table persists —
so the compressor exposes explicit training.  Decompression needs the same
table contents, which hardware guarantees by construction; here the table
snapshot travels in the payload header so round-trips stay self-contained.
"""

from __future__ import annotations

import struct
from collections import Counter
from typing import Iterable, List, Optional, Tuple

from repro.compression.base import CompressedLine, Compressor, check_line
from repro.config import LINE_SIZE

_TABLE_ENTRIES = 8  # 3-bit index
_FLAG_BITS = 1
_INDEX_BITS = 3
_WORD_BITS = 32

_HIT_BITS = _FLAG_BITS + _INDEX_BITS
_MISS_BITS = _FLAG_BITS + _WORD_BITS

_UNPACK_WORDS = struct.Struct("<16I").unpack


class FVCCompressor(Compressor):
    """Frequent-value compression with a trained 8-entry value table."""

    name = "fvc"

    def __init__(self, frequent_values: Iterable[int] = ()) -> None:
        self.table: Tuple[int, ...] = tuple(frequent_values)[:_TABLE_ENTRIES]
        self._train_counts: Counter = Counter()
        # (table identity, frozenset of its values); rebuilt — and the size
        # memo flushed — whenever the table object changes, because memoized
        # sizes are only valid for the table they were computed against
        self._table_cache: Optional[Tuple[Tuple[int, ...], frozenset]] = None

    def _table_set(self) -> frozenset:
        """Membership set for the current table; invalidates stale memos."""
        cached = self._table_cache
        table = self.table
        if cached is None or cached[0] is not table:
            if self._memo is not None:
                self._memo.clear()
            cached = (table, frozenset(table))
            self._table_cache = cached
        return cached[1]

    # -- training ---------------------------------------------------------

    def train(self, data: bytes) -> None:
        """Accumulate value statistics from one line."""
        check_line(data)
        self._train_counts.update(_UNPACK_WORDS(data))

    def finalize_table(self) -> Tuple[int, ...]:
        """Freeze the most frequent values into the table."""
        self.table = tuple(
            value for value, _count in self._train_counts.most_common(_TABLE_ENTRIES)
        )
        return self.table

    # -- compression --------------------------------------------------------

    def compress(self, data: bytes) -> CompressedLine:
        check_line(data)
        index_of = {value: i for i, value in enumerate(self.table)}
        words = _UNPACK_WORDS(data)
        tokens: List[Tuple[bool, int]] = []
        bits = 0
        for word in words:
            hit = index_of.get(word)
            if hit is not None:
                tokens.append((True, hit))
                bits += _FLAG_BITS + _INDEX_BITS
            else:
                tokens.append((False, word))
                bits += _FLAG_BITS + _WORD_BITS
        size = min(LINE_SIZE, (bits + 7) // 8)
        return CompressedLine(self.name, size, (self.table, tuple(tokens)))

    def compressed_size(self, data: bytes) -> int:
        """Memoized size; FVC first revalidates the table the memo assumes."""
        self._table_set()
        return super().compressed_size(data)

    def _size_kernel(self, data: bytes) -> int:
        table_set = self._table_set()
        hits = 0
        for word in _UNPACK_WORDS(data):
            if word in table_set:
                hits += 1
        bits = hits * _HIT_BITS + (len(data) // 4 - hits) * _MISS_BITS
        return min(LINE_SIZE, (bits + 7) // 8)

    def decompress(self, line: CompressedLine) -> bytes:
        if line.algorithm != self.name:
            raise ValueError(f"not an FVC line: {line.algorithm}")
        table, tokens = line.payload
        words = [
            table[value] if is_hit else value for is_hit, value in tokens
        ]
        if len(words) != LINE_SIZE // 4:
            raise ValueError("corrupt FVC payload")
        return struct.pack("<16I", *words)

    @property
    def coverage(self) -> float:
        """Fraction of trained words the frozen table would capture."""
        total = sum(self._train_counts.values())
        if not total:
            return 0.0
        covered = sum(self._train_counts[value] for value in self.table)
        return covered / total
