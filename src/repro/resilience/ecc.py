"""SECDED ECC model over 64 B cache lines.

The DRAM cache stores 72 B TADs; a KNL-style organization spends the ECC
lanes on tags, but the resilience layer models the conventional alternative:
SECDED (single-error-correct, double-error-detect) protecting each line.
The model is outcome-level — it classifies the *number* of bit errors a
read observed rather than simulating syndrome decoding:

* 1 flipped bit   -> corrected transparently (counted, data intact);
* 2 flipped bits  -> detected but uncorrectable: the line must be dropped
  and refetched from DDR (graceful degradation, charged real latency);
* 3+ flipped bits -> aliases to a valid-or-correctable codeword with high
  probability, i.e. a *silent* miscorrection: poisoned data propagates;
* ``scheme="none"`` -> every fault propagates silently.
"""

from __future__ import annotations

CLEAN = "clean"
CORRECTED = "corrected"
DETECTED = "detected"
SILENT = "silent"

SCHEMES = ("none", "secded")


def classify(bit_errors: int, scheme: str = "secded") -> str:
    """ECC verdict for a line read with ``bit_errors`` flipped bits."""
    if scheme not in SCHEMES:
        raise ValueError(f"unknown ECC scheme {scheme!r}; known: {SCHEMES}")
    if bit_errors <= 0:
        return CLEAN
    if scheme == "none":
        return SILENT
    if bit_errors == 1:
        return CORRECTED
    if bit_errors == 2:
        return DETECTED
    return SILENT
