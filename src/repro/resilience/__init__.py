"""Fault injection, ECC modeling, and graceful degradation for the L4.

The resilience layer answers a question the paper could not: does
compression amplify the blast radius of a DRAM bit error (one flipped
frame now corrupts *two* co-located compressed lines), and does DICE
degrade gracefully when it does?  See DESIGN.md, "Fault model &
resilience".
"""

from repro.resilience.ecc import (
    CLEAN,
    CORRECTED,
    DETECTED,
    SCHEMES,
    SILENT,
    classify,
)
from repro.resilience.faults import (
    CPU_CLOCK_HZ,
    STUCK,
    TRANSIENT,
    Fault,
    FaultModel,
    FaultTimeline,
)
from repro.resilience.injector import FaultInjector, ResilienceStats
from repro.resilience.taxonomy import (
    CHAOS_CLASSES,
    FAILURE_TAXONOMY,
    FailureClass,
    describe_taxonomy,
)

__all__ = [
    "CHAOS_CLASSES",
    "FAILURE_TAXONOMY",
    "FailureClass",
    "describe_taxonomy",
    "CLEAN",
    "CORRECTED",
    "DETECTED",
    "SILENT",
    "SCHEMES",
    "classify",
    "CPU_CLOCK_HZ",
    "TRANSIENT",
    "STUCK",
    "Fault",
    "FaultModel",
    "FaultTimeline",
    "FaultInjector",
    "ResilienceStats",
]
