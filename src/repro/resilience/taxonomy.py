"""Shared failure taxonomy: every failure class the stack can survive.

One table, two consumers.  The *simulated* half (``dram.*``) is what the
fault-injection layer of PR 1 throws at the modeled memory system; the
*execution* half (``exec.*`` / ``cache.*``) is what the chaos harness
(:mod:`repro.chaos`) throws at the harness itself — worker crashes,
hangs, torn shard files, failed writes, corrupted payloads.  Each entry
names how the failure is detected and how the stack recovers, and
DESIGN.md Section 13 renders this table verbatim (a docs-consistency
test keeps the two in sync).
"""

from __future__ import annotations

from dataclasses import dataclass
from typing import Dict, Tuple


@dataclass(frozen=True)
class FailureClass:
    """One named way the stack (simulated or real) can fail."""

    name: str  # short key, e.g. "crash"
    layer: str  # "dram" | "exec" | "cache"
    description: str
    detection: str
    recovery: str

    @property
    def qualified(self) -> str:
        return f"{self.layer}.{self.name}"


FAILURE_TAXONOMY: Dict[str, FailureClass] = {
    fc.qualified: fc
    for fc in (
        # -- simulated failures (PR 1: repro.resilience fault model) ---------
        FailureClass(
            "transient",
            "dram",
            "a cosmic-ray bit flip in an L4 DRAM frame",
            "ECC syndrome on read (SECDED corrects 1, detects 2)",
            "correct in place, or invalidate + refetch from DDR",
        ),
        FailureClass(
            "stuck",
            "dram",
            "a permanently stuck-at cell corrupting every access",
            "repeated ECC detection on the same frame",
            "invalidate + refetch; the frame keeps paying the penalty",
        ),
        # -- execution failures (this PR: repro.chaos + exec supervisor) -----
        FailureClass(
            "crash",
            "exec",
            "a worker process dies mid-job (os._exit, OOM kill, segfault)",
            "BrokenProcessPool surfacing on the in-flight futures",
            "rebuild the pool, requeue in-flight jobs, count the attempt; "
            "quarantine the job after max_attempts",
        ),
        FailureClass(
            "hang",
            "exec",
            "a worker wedges past the per-job wall-clock deadline",
            "supervisor watchdog comparing job start markers to deadlines",
            "terminate the pool's workers, requeue unfinished jobs, "
            "count the attempt; quarantine after max_attempts",
        ),
        FailureClass(
            "corrupt",
            "exec",
            "a job returns a garbled result payload",
            "result validation (finite cycles/energy, rates in [0, 1])",
            "invalidate the poisoned cache entry, requeue the job; "
            "quarantine after max_attempts",
        ),
        FailureClass(
            "torn_write",
            "cache",
            "a shard write is torn mid-file (power loss, full disk rename)",
            "JSON decode failure on a later read",
            "quarantine the torn file (*.corrupt) and re-simulate the entry",
        ),
        FailureClass(
            "write_error",
            "cache",
            "a shard write fails outright (ENOSPC, EPERM, read-only disk)",
            "OSError counted in the exec.cache.write_error metric, "
            "path logged once per shard",
            "job completes from memory; per-shard circuit breaker opens "
            "after repeated errors so the campaign stops paying for a "
            "dead disk",
        ),
    )
}

# The classes the chaos harness can inject at the exec seams, in the
# deterministic order forced-coverage assignment walks them.
CHAOS_CLASSES: Tuple[str, ...] = (
    "crash",
    "hang",
    "torn_write",
    "write_error",
    "corrupt",
)

# Injection classes whose blast radius is the worker *process* (they only
# fire inside pool workers — injecting them in the parent would kill or
# stall the campaign itself rather than exercise its recovery).
PROCESS_FATAL_CLASSES: Tuple[str, ...] = ("crash", "hang")


def describe_taxonomy() -> str:
    """The failure table as markdown (DESIGN.md Sec 13 embeds this shape)."""
    lines = [
        "| class | layer | failure | detected by | recovery |",
        "|---|---|---|---|---|",
    ]
    for fc in FAILURE_TAXONOMY.values():
        lines.append(
            f"| `{fc.name}` | {fc.layer} | {fc.description} "
            f"| {fc.detection} | {fc.recovery} |"
        )
    return "\n".join(lines)
