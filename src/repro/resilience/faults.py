"""DRAM fault model: rates, event records, and a seeded fault timeline.

Faults arrive as a Poisson process whose intensity is expressed the way
field studies report it — events per gigabyte-hour of device exposure —
and scaled to simulated CPU cycles through the device capacity and the
paper's 3.2 GHz clock (Table 2).  Simulated windows are microseconds long,
so experiments use *accelerated* rates (the software analogue of beam
testing); the conversion keeps the knob physically meaningful.

Two fault kinds are modeled:

* **transient** — a one-shot upset (particle strike, read disturb) that
  corrupts the victim line(s) of exactly one read;
* **stuck-at** — a permanent cell failure at a physical frame: every later
  read mapping to that frame re-experiences the same flipped bits.

All draws come from one seeded :class:`random.Random`, so a given
``(seed, read sequence)`` reproduces the exact same fault sites — the
property the resilience tests pin down.
"""

from __future__ import annotations

import random
from dataclasses import dataclass
from typing import Optional, Tuple

CPU_CLOCK_HZ = 3.2e9
"""Core clock of the paper machine; converts simulated cycles to seconds."""

SECONDS_PER_HOUR = 3600.0

TRANSIENT = "transient"
STUCK = "stuck"


@dataclass(frozen=True)
class FaultModel:
    """Statistical description of the injected fault population.

    ``rate_per_gb_hour`` is the event rate per gigabyte-hour of simulated
    device time.  ``stuck_fraction`` of events leave a permanent stuck-at
    site behind; the rest are transient.  ``bit_weights`` gives the
    probability of an event flipping 1, 2, or 3 bits (single-bit upsets
    dominate in the field; multi-bit upsets exercise the detected and
    silent ECC paths).
    """

    rate_per_gb_hour: float
    stuck_fraction: float = 0.1
    bit_weights: Tuple[float, float, float] = (0.80, 0.12, 0.08)

    def events_per_cycle(self, capacity_bytes: int) -> float:
        """Poisson intensity in events per simulated CPU cycle."""
        gigabytes = capacity_bytes / float(1 << 30)
        return (
            self.rate_per_gb_hour
            * gigabytes
            / SECONDS_PER_HOUR
            / CPU_CLOCK_HZ
        )


@dataclass(frozen=True)
class Fault:
    """One materialized fault event, pinned to a physical frame."""

    set_index: int
    bits: int  # distinct bit flips this event contributes
    kind: str  # TRANSIENT or STUCK
    cycle: int  # cycle of the read that experienced the event


class FaultTimeline:
    """Seeded Poisson arrival process over simulated cycles.

    ``events_until(cycle)`` pops the number of events whose arrival time is
    at or before ``cycle``; arrivals are drawn once and consumed in order,
    so replaying the same read sequence replays the same events.
    """

    def __init__(
        self,
        model: FaultModel,
        capacity_bytes: int,
        rng: random.Random,
    ) -> None:
        self._model = model
        self._rng = rng
        self._rate = model.events_per_cycle(capacity_bytes)
        self._next: Optional[float] = self._draw_gap(0.0)

    def _draw_gap(self, after: float) -> Optional[float]:
        if self._rate <= 0.0:
            return None
        return after + self._rng.expovariate(self._rate)

    def events_until(self, cycle: int) -> int:
        """Number of arrivals with timestamp <= ``cycle`` not yet consumed."""
        count = 0
        while self._next is not None and self._next <= cycle:
            count += 1
            self._next = self._draw_gap(self._next)
        return count

    def draw_bits(self) -> int:
        """Bit multiplicity of one event, per ``bit_weights``."""
        w1, w2, _w3 = self._model.bit_weights
        u = self._rng.random()
        if u < w1:
            return 1
        if u < w1 + w2:
            return 2
        return 3

    def draw_is_stuck(self) -> bool:
        return self._rng.random() < self._model.stuck_fraction
