"""Deterministic fault injection into DRAM-cache reads.

The :class:`FaultInjector` sits behind a narrow hook on the memory system's
L4 read path (``repro.sim.system``): each read hit asks it how many bit
errors the accessed frame observed, and the ECC model's verdict decides
whether data passes clean, gets corrected, forces an invalidate-and-refetch
from DDR, or propagates silently poisoned.

Fault events from the seeded timeline attach to the frame being read when
they fire (a read-disturb-flavored simplification that keeps injection
O(1) and makes every fault observable).  Stuck-at events additionally
plant a permanent site at that frame: in the Alloy organization a set *is*
a physical 72 B frame, so keying stuck sites by set index is keying them
by physical location.
"""

from __future__ import annotations

import random
from dataclasses import dataclass, field
from typing import Dict, List, Optional, Tuple

from repro.config import LINE_SIZE
from repro.resilience.ecc import SCHEMES, classify
from repro.resilience.faults import (
    STUCK,
    TRANSIENT,
    Fault,
    FaultModel,
    FaultTimeline,
)


@dataclass
class ResilienceStats:
    """Counters kept by the injector across one simulation run.

    ``faults_injected`` counts fault *experiences* (timeline events, forced
    events, and re-reads of stuck sites).  The per-line outcome counters
    satisfy the invariant::

        lines_corrupted == ecc_corrected
                           + ecc_detected_invalidations
                           + silent_corruptions
    """

    faults_injected: int = 0
    lines_corrupted: int = 0
    ecc_corrected: int = 0
    ecc_detected_refetches: int = 0
    ecc_detected_invalidations: int = 0
    silent_corruptions: int = 0
    stuck_sites_planted: int = 0
    pair_blast_events: int = 0
    faults: List[Fault] = field(default_factory=list)

    def reset(self) -> None:
        """Zero every counter in place (the warmup-boundary stats reset).

        Only the *accounting* resets — planted stuck sites and the fault
        timeline are injector state and keep firing; post-warmup windows
        simply stop inheriting warmup-era counts.
        """
        self.faults_injected = 0
        self.lines_corrupted = 0
        self.ecc_corrected = 0
        self.ecc_detected_refetches = 0
        self.ecc_detected_invalidations = 0
        self.silent_corruptions = 0
        self.stuck_sites_planted = 0
        self.pair_blast_events = 0
        self.faults.clear()


class FaultInjector:
    """Seeded, deterministic source of DRAM-cache bit errors.

    One instance serves one simulation run.  All randomness flows through a
    single :class:`random.Random`, so a fixed ``seed`` plus a fixed read
    sequence reproduces identical fault sites, multiplicities, and
    corrupted payloads.
    """

    def __init__(
        self,
        model: FaultModel,
        *,
        capacity_bytes: int,
        ecc: str = "secded",
        seed: int = 0,
    ) -> None:
        if ecc not in SCHEMES:
            raise ValueError(f"unknown ECC scheme {ecc!r}; known: {SCHEMES}")
        self.model = model
        self.ecc = ecc
        self._rng = random.Random(0x5EED ^ (seed * 0x9E3779B1 & 0xFFFFFFFF))
        self._timeline = FaultTimeline(model, capacity_bytes, self._rng)
        # set index -> accumulated stuck bit flips at that physical frame
        self._stuck: Dict[int, int] = {}
        # (target set or None=next read, bits, kind) queued by tests/demos
        self._forced: List[Tuple[Optional[int], int, str]] = []
        self.stats = ResilienceStats()

    # -- injection -----------------------------------------------------------

    def force_fault(
        self,
        set_index: Optional[int] = None,
        bits: int = 1,
        kind: str = TRANSIENT,
    ) -> None:
        """Queue one fault for the next read (of ``set_index``, if given)."""
        if bits < 1:
            raise ValueError("a fault flips at least one bit")
        if kind not in (TRANSIENT, STUCK):
            raise ValueError(f"unknown fault kind {kind!r}")
        self._forced.append((set_index, bits, kind))

    def bit_errors_for_read(self, set_index: int, cycle: int) -> int:
        """Total flipped bits the read of ``set_index`` at ``cycle`` sees."""
        stuck_before = self._stuck.get(set_index, 0)
        bits = 0

        pending: List[Tuple[Optional[int], int, str]] = []
        for target, forced_bits, kind in self._forced:
            if target is None or target == set_index:
                bits += forced_bits
                self._record(set_index, forced_bits, kind, cycle)
            else:
                pending.append((target, forced_bits, kind))
        self._forced = pending

        for _ in range(self._timeline.events_until(cycle)):
            event_bits = self._timeline.draw_bits()
            kind = STUCK if self._timeline.draw_is_stuck() else TRANSIENT
            bits += event_bits
            self._record(set_index, event_bits, kind, cycle)

        if stuck_before:
            # Re-read of a previously planted stuck site: the same cells
            # are still flipped, experienced as one more fault.
            bits += stuck_before
            self.stats.faults_injected += 1
        return bits

    def _record(self, set_index: int, bits: int, kind: str, cycle: int) -> None:
        self.stats.faults_injected += 1
        self.stats.faults.append(
            Fault(set_index=set_index, bits=bits, kind=kind, cycle=cycle)
        )
        if kind == STUCK:
            self._stuck[set_index] = self._stuck.get(set_index, 0) + bits
            self.stats.stuck_sites_planted += 1

    # -- outcomes ------------------------------------------------------------

    def verdict(self, bit_errors: int) -> str:
        """ECC classification for this injector's configured scheme."""
        return classify(bit_errors, self.ecc)

    def corrupt(self, data: bytes, bit_errors: int) -> bytes:
        """Return ``data`` with ``bit_errors`` distinct bits flipped."""
        if len(data) != LINE_SIZE:
            raise ValueError("corruption operates on whole 64 B lines")
        mutated = bytearray(data)
        positions = self._rng.sample(range(LINE_SIZE * 8), bit_errors)
        for pos in positions:
            mutated[pos // 8] ^= 1 << (pos % 8)
        return bytes(mutated)
