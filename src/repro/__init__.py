"""repro — a from-scratch reproduction of DICE (ISCA 2017).

DICE: Compressing DRAM Caches for Bandwidth and Capacity
(V. Young, P. J. Nair, M. K. Qureshi).

Public API layers:

* ``repro.compression`` — FPC / BDI / ZCA / hybrid line compressors.
* ``repro.dram`` — DRAM bank/channel/device timing substrate.
* ``repro.cache`` — on-chip SRAM cache substrate (shared L3).
* ``repro.dramcache`` — Alloy-cache organization, set packing, MAP-I, SCC.
* ``repro.core`` — the paper's contribution: BAI indexing, DICE, CIP.
* ``repro.workloads`` — synthetic SPEC/GAP workload generators.
* ``repro.sim`` — the multi-core memory-system simulator.
* ``repro.harness`` — experiment drivers for every paper figure/table.

Quick start::

    from repro import SimulationParams, make_config, run_workload

    config = make_config("dice")        # 1 GB-cache machine, scaled
    result = run_workload("soplex", config, SimulationParams())
    print(result.l4_hit_rate, result.effective_capacity)
"""

from repro.config import (
    CoreConfig,
    DRAMCacheConfig,
    DRAMOrganization,
    DRAMTimings,
    SRAMCacheConfig,
    SystemConfig,
)
from repro.harness.runner import (
    STANDARD_CONFIGS,
    cached_run,
    make_config,
    resolve_config,
    speedup,
)
from repro.sim.engine import SimulationParams, run_workload
from repro.sim.metrics import SimResult

__version__ = "1.0.0"

__all__ = [
    "CoreConfig",
    "DRAMCacheConfig",
    "DRAMOrganization",
    "DRAMTimings",
    "SRAMCacheConfig",
    "SystemConfig",
    "STANDARD_CONFIGS",
    "cached_run",
    "make_config",
    "resolve_config",
    "speedup",
    "SimulationParams",
    "run_workload",
    "SimResult",
    "__version__",
]
