"""Set-associative SRAM cache with writeback/write-allocate semantics.

Used for the shared L3 in the simulated system (private L1/L2 effects are
folded into the trace: the workload generators emit the L2-miss stream, i.e.
the L3 access stream, exactly the granularity USIMM saw from PinPoint
slices).  The cache is functional — it stores real line data — so the DICE
path that installs decompressed neighbor lines into L3 is exercised with
real bytes.
"""

from __future__ import annotations

from dataclasses import dataclass
from typing import Dict, List, Optional, Tuple

from repro.cache.replacement import LRUPolicy, ReplacementPolicy
from repro.config import LINE_SIZE, SRAMCacheConfig


@dataclass
class SRAMLine:
    """One resident line."""

    tag: int
    data: bytes
    dirty: bool = False
    valid: bool = True


@dataclass(frozen=True)
class Eviction:
    """A victim pushed out by a fill."""

    line_addr: int
    data: bytes
    dirty: bool


class SRAMCache:
    """A single set-associative level."""

    def __init__(
        self,
        config: SRAMCacheConfig,
        replacement: Optional[ReplacementPolicy] = None,
    ) -> None:
        self.config = config
        self.num_sets = config.num_sets
        self.associativity = config.associativity
        self.replacement = replacement or LRUPolicy(
            self.num_sets, self.associativity
        )
        self._sets: List[Dict[int, Tuple[int, SRAMLine]]] = [
            {} for _ in range(self.num_sets)
        ]
        # way occupancy per set: way -> tag
        self._ways: List[List[Optional[int]]] = [
            [None] * self.associativity for _ in range(self.num_sets)
        ]
        self.hits = 0
        self.misses = 0

    def _index(self, line_addr: int) -> Tuple[int, int]:
        return line_addr % self.num_sets, line_addr // self.num_sets

    def lookup(self, line_addr: int, *, touch: bool = True) -> Optional[bytes]:
        """Probe for a line; counts hit/miss and updates recency on hit."""
        set_index, tag = self._index(line_addr)
        entry = self._sets[set_index].get(tag)
        if entry is None:
            self.misses += 1
            return None
        way, line = entry
        if touch:
            self.replacement.on_access(set_index, way)
        self.hits += 1
        return line.data

    def contains(self, line_addr: int) -> bool:
        """Presence check with no stats or recency side effects."""
        set_index, tag = self._index(line_addr)
        return tag in self._sets[set_index]

    def write_hit(self, line_addr: int, data: bytes) -> bool:
        """Update a resident line in place; returns False on miss."""
        set_index, tag = self._index(line_addr)
        entry = self._sets[set_index].get(tag)
        if entry is None:
            return False
        way, line = entry
        line.data = data
        line.dirty = True
        self.replacement.on_access(set_index, way)
        return True

    def install(
        self, line_addr: int, data: bytes, *, dirty: bool = False
    ) -> Optional[Eviction]:
        """Fill a line, evicting if the set is full.

        Returns the eviction (for writeback handling) or None.
        """
        if len(data) != LINE_SIZE:
            raise ValueError("SRAM cache stores whole lines")
        set_index, tag = self._index(line_addr)
        bucket = self._sets[set_index]
        existing = bucket.get(tag)
        if existing is not None:
            way, line = existing
            line.data = data
            line.dirty = line.dirty or dirty
            self.replacement.on_access(set_index, way)
            return None
        evicted: Optional[Eviction] = None
        ways = self._ways[set_index]
        if None in ways:
            way = ways.index(None)
        else:
            way = self.replacement.victim(set_index)
            victim_tag = ways[way]
            assert victim_tag is not None
            _way, victim = bucket.pop(victim_tag)
            evicted = Eviction(
                line_addr=victim_tag * self.num_sets + set_index,
                data=victim.data,
                dirty=victim.dirty,
            )
        ways[way] = tag
        bucket[tag] = (way, SRAMLine(tag=tag, data=data, dirty=dirty))
        self.replacement.on_access(set_index, way)
        return evicted

    def invalidate(self, line_addr: int) -> Optional[Eviction]:
        """Drop a line if present, returning it for writeback if dirty."""
        set_index, tag = self._index(line_addr)
        entry = self._sets[set_index].pop(tag, None)
        if entry is None:
            return None
        way, line = entry
        self._ways[set_index][way] = None
        return Eviction(line_addr=line_addr, data=line.data, dirty=line.dirty)

    @property
    def hit_rate(self) -> float:
        total = self.hits + self.misses
        return self.hits / total if total else 0.0

    def reset_stats(self) -> None:
        self.hits = 0
        self.misses = 0

    def valid_line_count(self) -> int:
        return sum(len(bucket) for bucket in self._sets)
