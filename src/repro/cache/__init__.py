"""On-chip SRAM cache substrate (the L1/L2/L3 levels of Table 2)."""

from repro.cache.replacement import LRUPolicy, RandomPolicy, ReplacementPolicy
from repro.cache.sram import SRAMCache
from repro.cache.hierarchy import OnChipHierarchy

__all__ = [
    "LRUPolicy",
    "RandomPolicy",
    "ReplacementPolicy",
    "SRAMCache",
    "OnChipHierarchy",
]
