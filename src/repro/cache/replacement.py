"""Replacement policies for the set-associative SRAM caches."""

from __future__ import annotations

import random
from abc import ABC, abstractmethod
from typing import List


class ReplacementPolicy(ABC):
    """Per-set replacement state; one instance covers the whole cache."""

    def __init__(self, num_sets: int, associativity: int) -> None:
        self.num_sets = num_sets
        self.associativity = associativity

    @abstractmethod
    def on_access(self, set_index: int, way: int) -> None:
        """Record a hit or fill touching ``way`` of ``set_index``."""

    @abstractmethod
    def victim(self, set_index: int) -> int:
        """Pick the way to evict from ``set_index``."""


class LRUPolicy(ReplacementPolicy):
    """True LRU via per-set recency stacks."""

    def __init__(self, num_sets: int, associativity: int) -> None:
        super().__init__(num_sets, associativity)
        self._stacks: List[List[int]] = [
            list(range(associativity)) for _ in range(num_sets)
        ]

    def on_access(self, set_index: int, way: int) -> None:
        stack = self._stacks[set_index]
        stack.remove(way)
        stack.append(way)

    def victim(self, set_index: int) -> int:
        return self._stacks[set_index][0]


class RandomPolicy(ReplacementPolicy):
    """Seeded random replacement, for ablation against LRU."""

    def __init__(self, num_sets: int, associativity: int, seed: int = 0) -> None:
        super().__init__(num_sets, associativity)
        self._rng = random.Random(seed)

    def on_access(self, set_index: int, way: int) -> None:
        pass

    def victim(self, set_index: int) -> int:
        return self._rng.randrange(self.associativity)
