"""Shared L3 wrapper with install filtering and prefetch hooks.

The simulated trace is the L3 access stream; this module wraps the L3
`SRAMCache` and adds the two behaviours the paper's evaluation varies:

* installing *extra* lines that arrive for free from a compressed L4 access
  (Sec 6.4: DICE installs the spatially adjacent decompressed line in L3);
* the comparison prefetchers of Table 7 (128 B wide fetch, next-line
  prefetch), which issue *additional* L4 requests rather than riding along.
"""

from __future__ import annotations

from typing import List, Optional

from repro.cache.sram import Eviction, SRAMCache
from repro.config import SRAMCacheConfig


class OnChipHierarchy:
    """The shared L3 plus its install policy."""

    def __init__(self, config: SRAMCacheConfig) -> None:
        self.l3 = SRAMCache(config)
        self.bonus_installs = 0
        self.bonus_hits = 0
        self._bonus_resident: set = set()

    def lookup(self, line_addr: int) -> Optional[bytes]:
        data = self.l3.lookup(line_addr)
        if data is not None and line_addr in self._bonus_resident:
            self.bonus_hits += 1
            self._bonus_resident.discard(line_addr)
        return data

    def write(self, line_addr: int, data: bytes) -> bool:
        return self.l3.write_hit(line_addr, data)

    def install(
        self, line_addr: int, data: bytes, *, dirty: bool = False
    ) -> Optional[Eviction]:
        self._bonus_resident.discard(line_addr)
        return self.l3.install(line_addr, data, dirty=dirty)

    def install_bonus(self, line_addr: int, data: bytes) -> Optional[Eviction]:
        """Install a line that arrived for free with a demand access.

        Skips the install if the line is already resident so that bonus
        traffic never disturbs recency of demand-fetched data it duplicates.
        """
        if self.l3.contains(line_addr):
            return None
        self.bonus_installs += 1
        self._bonus_resident.add(line_addr)
        evicted = self.l3.install(line_addr, data, dirty=False)
        if evicted is not None:
            self._bonus_resident.discard(evicted.line_addr)
        return evicted

    def invalidate(self, line_addr: int) -> Optional[Eviction]:
        self._bonus_resident.discard(line_addr)
        return self.l3.invalidate(line_addr)

    @property
    def hit_rate(self) -> float:
        return self.l3.hit_rate

    def reset_stats(self) -> None:
        self.l3.reset_stats()
        self.bonus_installs = 0
        self.bonus_hits = 0
