"""Skewed Compressed Cache transplanted onto a DRAM cache (paper Sec 7.3).

SCC (Sardashti et al., MICRO 2014) was designed for SRAM: superblock tags
are shared across spatially contiguous sets and lines are placed in one of
several skewed ways according to their compressibility.  Looking up a line
therefore means probing multiple skewed locations.  On SRAM all tag ways are
read in parallel for free; on a DRAM cache every probed location is a
separate DRAM access.

Following the paper's evaluation, each SCC request costs four DRAM-cache
accesses (three tag probes plus the data access), which is what makes SCC
lose 22% on a bandwidth-sensitive DRAM cache while DICE gains 19%.  The
functional model keeps SCC's capacity benefit: lines compress into skewed
ways with superblock tag sharing, giving an effective capacity similar to a
compressed associative design.
"""

from __future__ import annotations

import zlib
from typing import Dict, List, Optional, Tuple

from repro.compression.base import Compressor
from repro.compression.hybrid import HybridCompressor
from repro.config import DRAMCacheConfig, LINE_SIZE, TAD_TRANSFER_BYTES
from repro.core.compressed_cache import DECOMPRESSION_CYCLES
from repro.dram.device import DRAMDevice
from repro.dramcache.alloy import L4ReadResult, L4WriteResult
from repro.dramcache.cset import CompressedSet, PairSizeCache, StoredLine

SCC_WAYS = 4
"""Skewed ways probed per request (3 tag probes + 1 data access)."""

SUPERBLOCK_LINES = 4
"""Lines per superblock sharing one tag (4x superblocks, Sec 7.3)."""


def _skew_hash(value: int, way: int) -> int:
    """Deterministic per-way skewing function."""
    return zlib.crc32(value.to_bytes(8, "little") + bytes([way])) & 0x7FFFFFFF


class SCCDRAMCache:
    """Skewed compressed cache over the DRAM array."""

    def __init__(
        self,
        config: DRAMCacheConfig,
        compressor: Optional[Compressor] = None,
    ) -> None:
        self.config = config
        # Partition the frame space into SCC_WAYS skewed banks of sets.
        self.sets_per_way = max(2, config.num_sets // SCC_WAYS)
        self.device = DRAMDevice(config.organization)
        self.compressor = compressor or HybridCompressor()
        self.pair_sizes = PairSizeCache(self.compressor)
        self._ways: List[Dict[int, CompressedSet]] = [
            {} for _ in range(SCC_WAYS)
        ]
        # superblock -> per-way skewed set indices (and the way-spread
        # hash install uses): the CRC skewing function is pure, and every
        # read probes all four ways, so one miss fills four lookups
        self._sb_locations: Dict[int, Tuple[int, ...]] = {}
        self._sb_spread: Dict[int, int] = {}
        self.read_hits = 0
        self.read_misses = 0
        self.installs = 0

    def _superblock(self, line_addr: int) -> int:
        return line_addr // SUPERBLOCK_LINES

    def _locations(self, line_addr: int) -> Tuple[int, ...]:
        """Skewed set indices for this line, one per way (memoized)."""
        sb = line_addr // SUPERBLOCK_LINES
        locs = self._sb_locations.get(sb)
        if locs is None:
            sets = self.sets_per_way
            locs = tuple(
                way * sets + _skew_hash(sb, way) % sets
                for way in range(SCC_WAYS)
            )
            self._sb_locations[sb] = locs
        return locs

    def _location(self, line_addr: int, way: int) -> int:
        """Skewed set index for this line in the given way."""
        return self._locations(line_addr)[way]

    def _probe_all(self, line_addr: int, arrival: int) -> Tuple[int, Optional[Tuple[int, StoredLine]]]:
        """Serially probe every skewed location; returns (finish, hit info).

        Every request pays SCC_WAYS DRAM accesses (Sec 7.3's four accesses).
        """
        found: Optional[Tuple[int, StoredLine]] = None
        finish = arrival
        device_access = self.device.access
        ways = self._ways
        for way, set_index in enumerate(self._locations(line_addr)):
            finish = device_access(
                set_index, finish, TAD_TRANSFER_BYTES
            ).finish_cycle
            cset = ways[way].get(set_index)
            stored = cset.get(line_addr) if cset is not None else None
            if stored is not None and found is None:
                found = (way, stored)
        return finish, found

    def read(self, line_addr: int, arrival: int, pc: int = 0) -> L4ReadResult:
        finish, found = self._probe_all(line_addr, arrival)
        if found is None:
            self.read_misses += 1
            return L4ReadResult(
                hit=False, data=None, finish_cycle=finish, accesses=SCC_WAYS
            )
        self.read_hits += 1
        way, stored = found
        return L4ReadResult(
            hit=True,
            data=stored.data,
            finish_cycle=finish + DECOMPRESSION_CYCLES,
            accesses=SCC_WAYS,
            set_index=self._location(line_addr, way),
        )

    def install(
        self,
        line_addr: int,
        data: bytes,
        arrival: int,
        *,
        dirty: bool = False,
        after_demand_read: bool = True,
    ) -> L4WriteResult:
        if len(data) != LINE_SIZE:
            raise ValueError("DRAM cache stores whole lines")
        size = self.compressor.compressed_size(data)
        # Way choice: compressibility picks the way (SCC places lines by
        # compressed size class); hash spreads superblocks across ways.
        size_class = 0 if size <= 16 else 1 if size <= 32 else 2 if size <= 48 else 3
        sb = self._superblock(line_addr)
        spread = self._sb_spread.get(sb)
        if spread is None:
            spread = _skew_hash(sb, 7)
            self._sb_spread[sb] = spread
        way = (size_class + spread) % SCC_WAYS
        locations = self._locations(line_addr)
        set_index = locations[way]
        accesses = 0
        if not after_demand_read:
            arrival = self.device.access(
                set_index, arrival, TAD_TRANSFER_BYTES
            ).finish_cycle
            accesses += 1
        # Remove stale copies in other ways.
        for other_way in range(SCC_WAYS):
            if other_way == way:
                continue
            cset = self._ways[other_way].get(locations[other_way])
            if cset is not None:
                cset.remove(line_addr)
        bucket = self._ways[way]
        cset = bucket.get(set_index)
        if cset is None:
            cset = CompressedSet(tag_sharing=True)
            bucket[set_index] = cset
        stored = StoredLine(
            line_addr=line_addr, data=data, size=size, dirty=dirty
        )
        evicted = cset.insert(stored, self.pair_sizes)
        finish = self.device.access(
            set_index, arrival, TAD_TRANSFER_BYTES
        ).finish_cycle
        accesses += 1
        self.installs += 1
        writebacks = [(v.line_addr, v.data) for v in evicted if v.dirty]
        return L4WriteResult(
            finish_cycle=finish, accesses=accesses, writebacks=writebacks
        )

    def contains(self, line_addr: int) -> bool:
        for way in range(SCC_WAYS):
            cset = self._ways[way].get(self._location(line_addr, way))
            if cset is not None and cset.get(line_addr) is not None:
                return True
        return False

    # -- resilience hooks ----------------------------------------------------

    def _resident(self, line_addr: int) -> Optional[Tuple[int, CompressedSet]]:
        for way in range(SCC_WAYS):
            set_index = self._location(line_addr, way)
            cset = self._ways[way].get(set_index)
            if cset is not None and cset.get(line_addr) is not None:
                return set_index, cset
        return None

    def invalidate(self, line_addr: int) -> bool:
        """Drop a line without writeback (detected-uncorrectable error)."""
        found = self._resident(line_addr)
        if found is None:
            return False
        found[1].remove(line_addr)
        return True

    def corrupt_stored(self, line_addr: int, corrupt_fn) -> Optional[bytes]:
        """Mutate a resident line's payload (silent fault propagation)."""
        found = self._resident(line_addr)
        if found is None:
            return None
        stored = found[1].lines[line_addr]
        stored.data = corrupt_fn(stored.data)
        return stored.data

    def pair_buddy(self, line_addr: int) -> Optional[int]:
        """Buddy address when pair-compressed in the same skewed frame."""
        found = self._resident(line_addr)
        if found is None:
            return None
        buddy_addr = line_addr ^ 1
        if found[1].get(buddy_addr) is not None:
            return buddy_addr
        return None

    def valid_line_count(self) -> int:
        return sum(
            len(cset) for bucket in self._ways for cset in bucket.values()
        )

    @property
    def hit_rate(self) -> float:
        total = self.read_hits + self.read_misses
        return self.read_hits / total if total else 0.0

    def reset_stats(self) -> None:
        self.read_hits = 0
        self.read_misses = 0
        self.installs = 0
        self.device.reset()
