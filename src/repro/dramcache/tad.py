"""Tag-and-Data layout of one 72 B Alloy set (paper Figs 2 and 5).

Uncompressed, a set is one TAD: an 8 B tag beside a 64 B line.  Compressed,
the same 72 bytes hold a variable number of 4 B tag entries followed by
variable-sized compressed data.  Each tag entry carries:

* 18-bit tag (enough for a 1 GB direct-mapped cache in a 48-bit PA space),
* valid and dirty bits,
* a *Next Tag Valid* bit marking whether the following 4 B is another tag,
* a *BAI* bit distinguishing the direct-mapped resident from a spatial
  neighbor placed here by bandwidth-aware indexing,
* a *Shared Tag* bit for a pair of co-compressed adjacent lines,
* up to 9 bits of compression metadata (FPC/BDI selector, encoding, size).

This module computes byte budgets for the packing logic in
:mod:`repro.dramcache.cset` and provides a bit-accurate encode/decode of the
tag word so tests can verify the format round-trips.
"""

from __future__ import annotations

from dataclasses import dataclass

from repro.config import TAD_BYTES, TAG_BYTES_COMPRESSED

SET_DATA_BYTES = TAD_BYTES
"""Total bytes available in a set for tags + compressed data."""

TAG_BITS = 18
_VALID_BIT = 1 << 18
_DIRTY_BIT = 1 << 19
_NEXT_TAG_VALID_BIT = 1 << 20
_BAI_BIT = 1 << 21
_SHARED_TAG_BIT = 1 << 22
_META_SHIFT = 23
_META_BITS = 9


@dataclass(frozen=True)
class TagEntry:
    """Decoded view of one 4 B tag word."""

    tag: int
    valid: bool = True
    dirty: bool = False
    next_tag_valid: bool = False
    bai: bool = False
    shared: bool = False
    metadata: int = 0

    def encode(self) -> int:
        """Pack into a 32-bit word."""
        if not 0 <= self.tag < (1 << TAG_BITS):
            raise ValueError(f"tag {self.tag:#x} exceeds {TAG_BITS} bits")
        if not 0 <= self.metadata < (1 << _META_BITS):
            raise ValueError(f"metadata {self.metadata:#x} exceeds {_META_BITS} bits")
        word = self.tag
        if self.valid:
            word |= _VALID_BIT
        if self.dirty:
            word |= _DIRTY_BIT
        if self.next_tag_valid:
            word |= _NEXT_TAG_VALID_BIT
        if self.bai:
            word |= _BAI_BIT
        if self.shared:
            word |= _SHARED_TAG_BIT
        word |= self.metadata << _META_SHIFT
        return word

    @staticmethod
    def decode(word: int) -> "TagEntry":
        """Unpack a 32-bit tag word."""
        if not 0 <= word < (1 << 32):
            raise ValueError("tag word must fit in 32 bits")
        return TagEntry(
            tag=word & ((1 << TAG_BITS) - 1),
            valid=bool(word & _VALID_BIT),
            dirty=bool(word & _DIRTY_BIT),
            next_tag_valid=bool(word & _NEXT_TAG_VALID_BIT),
            bai=bool(word & _BAI_BIT),
            shared=bool(word & _SHARED_TAG_BIT),
            metadata=(word >> _META_SHIFT) & ((1 << _META_BITS) - 1),
        )


def set_layout_bytes(num_tags: int, data_bytes: int) -> int:
    """Total bytes a set layout occupies: tags then data."""
    if num_tags < 0 or data_bytes < 0:
        raise ValueError("layout components must be non-negative")
    return num_tags * TAG_BYTES_COMPRESSED + data_bytes
