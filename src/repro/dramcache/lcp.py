"""LCP-style compressed DRAM cache (the main-memory-compression contrast).

Sec 2.2 motivates DICE against Linearly-Compressed-Pages-style main-memory
compression: pages are compressed to a uniform per-line target so a single
access fetches multiple lines, but (a) page layout needs OS involvement and
(b) lines that do not meet the target live in an *exception region*, costing
a second serialized access.  Sec 7.2 makes the same point about the hybrid
PCM/DRAM designs built on this idea: "an additional serialized access to
find compressed size and offset ... double the bandwidth usage and double
the latency per access".

This model transplants that organization onto the DRAM cache so the
trade-off is measurable in the same harness:

* each page (16-line region) holds lines compressed to a fixed 16 B target;
* a line meeting the target is read with one access that also returns its
  page neighbors (bandwidth benefit, like BAI);
* an exception line costs a second, serialized access;
* per-page metadata (which lines are exceptions) is charged as an SRAM
  table lookup, standing in for the OS-managed page table the paper calls
  out — the design's structural disadvantage.
"""

from __future__ import annotations

from typing import Dict, List, Optional, Tuple

from repro.compression.base import Compressor
from repro.compression.hybrid import HybridCompressor
from repro.config import DRAMCacheConfig, LINE_SIZE, TAD_TRANSFER_BYTES
from repro.core.compressed_cache import DECOMPRESSION_CYCLES
from repro.dram.device import DRAMDevice
from repro.dramcache.alloy import L4ReadResult, L4WriteResult

TARGET_SIZE = 16
"""Per-line compression target (LCP compresses lines to 1/4 size)."""

PAGE_LINES = 16
"""Lines per compressed page region."""


class LCPDRAMCache:
    """Page-granular fixed-target compression over the DRAM array."""

    def __init__(
        self,
        config: DRAMCacheConfig,
        compressor: Optional[Compressor] = None,
    ) -> None:
        self.config = config
        self.num_sets = config.num_sets
        self.device = DRAMDevice(config.organization)
        self.compressor = compressor or HybridCompressor()
        # set -> (line_addr, data, dirty, is_exception)
        self._sets: Dict[int, Tuple[int, bytes, bool, bool]] = {}
        self.read_hits = 0
        self.read_misses = 0
        self.installs = 0
        self.exception_accesses = 0

    def set_index(self, line_addr: int) -> int:
        """Pages stay contiguous so one access spans neighbors."""
        return line_addr % self.num_sets

    def _is_exception(self, data: bytes) -> bool:
        return self.compressor.compressed_size(data) > TARGET_SIZE

    def read(self, line_addr: int, arrival: int, pc: int = 0) -> L4ReadResult:
        set_index = self.set_index(line_addr)
        finish = self.device.access(
            set_index, arrival, TAD_TRANSFER_BYTES
        ).finish_cycle
        resident = self._sets.get(set_index)
        if resident is None or resident[0] != line_addr:
            self.read_misses += 1
            return L4ReadResult(hit=False, data=None, finish_cycle=finish)
        self.read_hits += 1
        _addr, data, _dirty, is_exception = resident
        accesses = 1
        extras: List[Tuple[int, bytes]] = []
        if is_exception:
            # Serialized second access into the exception region.
            finish = self.device.access(
                set_index ^ 1, finish, TAD_TRANSFER_BYTES
            ).finish_cycle
            self.exception_accesses += 1
            accesses = 2
        else:
            # The 80 B burst carries ~4 more target-sized page neighbors;
            # forward the spatially adjacent one, like DICE does.
            buddy_index = self.set_index(line_addr ^ 1)
            buddy = self._sets.get(buddy_index)
            if (
                buddy is not None
                and buddy[0] == (line_addr ^ 1)
                and not buddy[3]
            ):
                extras.append((buddy[0], buddy[1]))
        return L4ReadResult(
            hit=True,
            data=data,
            finish_cycle=finish + DECOMPRESSION_CYCLES,
            accesses=accesses,
            extra_lines=extras,
            set_index=set_index,
        )

    def install(
        self,
        line_addr: int,
        data: bytes,
        arrival: int,
        *,
        dirty: bool = False,
        after_demand_read: bool = True,
    ) -> L4WriteResult:
        if len(data) != LINE_SIZE:
            raise ValueError("DRAM cache stores whole lines")
        set_index = self.set_index(line_addr)
        accesses = 0
        if not after_demand_read:
            arrival = self.device.access(
                set_index, arrival, TAD_TRANSFER_BYTES
            ).finish_cycle
            accesses += 1
        is_exception = self._is_exception(data)
        victim = self._sets.get(set_index)
        writebacks: List[Tuple[int, bytes]] = []
        if victim is not None and victim[0] != line_addr and victim[2]:
            writebacks.append((victim[0], victim[1]))
        if victim is not None and victim[0] == line_addr:
            dirty = dirty or victim[2]
        self._sets[set_index] = (line_addr, data, dirty, is_exception)
        finish = self.device.access(
            set_index, arrival, TAD_TRANSFER_BYTES
        ).finish_cycle
        accesses += 1
        if is_exception:
            # exception-region write, serialized
            finish = self.device.access(
                set_index ^ 1, finish, TAD_TRANSFER_BYTES
            ).finish_cycle
            accesses += 1
        self.installs += 1
        return L4WriteResult(
            finish_cycle=finish, accesses=accesses, writebacks=writebacks
        )

    def contains(self, line_addr: int) -> bool:
        resident = self._sets.get(self.set_index(line_addr))
        return resident is not None and resident[0] == line_addr

    # -- resilience hooks ----------------------------------------------------

    def invalidate(self, line_addr: int) -> bool:
        """Drop a line without writeback (detected-uncorrectable error)."""
        set_index = self.set_index(line_addr)
        resident = self._sets.get(set_index)
        if resident is not None and resident[0] == line_addr:
            del self._sets[set_index]
            return True
        return False

    def corrupt_stored(self, line_addr: int, corrupt_fn) -> Optional[bytes]:
        """Mutate a resident line's payload (silent fault propagation)."""
        set_index = self.set_index(line_addr)
        resident = self._sets.get(set_index)
        if resident is not None and resident[0] == line_addr:
            data = corrupt_fn(resident[1])
            self._sets[set_index] = (line_addr, data, resident[2], resident[3])
            return data
        return None

    def pair_buddy(self, line_addr: int) -> Optional[int]:
        """LCP frames hold one line each: no co-located compressed pair."""
        return None

    def valid_line_count(self) -> int:
        return len(self._sets)

    @property
    def hit_rate(self) -> float:
        total = self.read_hits + self.read_misses
        return self.read_hits / total if total else 0.0

    def reset_stats(self) -> None:
        self.read_hits = 0
        self.read_misses = 0
        self.installs = 0
        self.exception_accesses = 0
        self.device.reset()
