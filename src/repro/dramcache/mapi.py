"""MAP-I style hit/miss prediction for the DRAM cache (Qureshi & Loh 2012).

Alloy Cache pairs its direct-mapped array with a Memory Access Predictor so
that on a predicted miss the main-memory access launches in parallel with the
cache probe, hiding the probe latency.  MAP-I indexes a table of saturating
counters by (hashed) instruction address; counters train toward "miss" on
observed misses.

A mispredicted miss (line actually hits) costs wasted memory bandwidth; a
mispredicted hit serializes the memory access behind the probe.  Both costs
are modeled by the system timing layer.
"""

from __future__ import annotations

from typing import List


class MAPIPredictor:
    """Instruction-indexed saturating-counter hit/miss predictor."""

    def __init__(self, entries: int = 256, bits: int = 3) -> None:
        if entries <= 0:
            raise ValueError("predictor needs at least one entry")
        self._counters: List[int] = [0] * entries
        self._max = (1 << bits) - 1
        self._threshold = (self._max + 1) // 2
        self.predictions = 0
        self.correct = 0

    def _index(self, pc: int) -> int:
        return (pc ^ (pc >> 7) ^ (pc >> 17)) % len(self._counters)

    def predict_miss(self, pc: int) -> bool:
        """True if the access is predicted to miss the DRAM cache."""
        return self._counters[self._index(pc)] >= self._threshold

    def update(self, pc: int, was_miss: bool) -> None:
        """Train on the resolved outcome and track accuracy."""
        idx = self._index(pc)
        predicted_miss = self._counters[idx] >= self._threshold
        self.predictions += 1
        if predicted_miss == was_miss:
            self.correct += 1
        if was_miss:
            self._counters[idx] = min(self._max, self._counters[idx] + 1)
        else:
            self._counters[idx] = max(0, self._counters[idx] - 1)

    @property
    def accuracy(self) -> float:
        return self.correct / self.predictions if self.predictions else 0.0
