"""Packing logic for one compressed DRAM-cache set (72 B, up to 28 lines).

A set stores a variable number of compressed lines.  Byte accounting follows
the paper's format (Fig 5):

* every resident line costs one 4 B tag entry plus its compressed data;
* two spatially adjacent lines (addresses 2i and 2i+1) that are both
  resident are *pair-compressed*: they share one 4 B tag and BDI bases, so
  their combined cost is ``4 + pair_compressed_size`` (Sec 4.2-4.3);
* total bytes must fit in 72 and the line count may not exceed 28.

Insertion evicts the least recently inserted/used lines until the newcomer
fits — the direct-mapped Alloy baseline degenerates to exactly one line per
set, so this generalizes the baseline's replacement.
"""

from __future__ import annotations

from dataclasses import dataclass
from typing import Dict, List, Optional, Tuple

from repro.compression.base import Compressor
from repro.compression.pair import pair_compressed_size
from repro.config import MAX_LINES_PER_SET, TAG_BYTES_COMPRESSED
from repro.dramcache.tad import SET_DATA_BYTES


@dataclass
class StoredLine:
    """One compressed line resident in a set."""

    line_addr: int
    data: bytes
    size: int  # individual compressed size in bytes
    dirty: bool = False
    bai: bool = False  # placed here by bandwidth-aware indexing


class PairSizeCache:
    """Memoizes pair-compressed sizes; co-compression is deterministic.

    Bounded LRU keyed on the pair's raw bytes: a hit re-inserts the entry
    (dict order is insertion order) and, at capacity, the least recently
    used entry is dropped — unlike a clear-when-full cache, the hot working
    set of pairs survives capacity pressure.
    """

    __slots__ = ("_compressor", "_cache", "_capacity", "hits", "misses", "evictions")

    def __init__(self, compressor: Compressor, capacity: int = 1 << 15) -> None:
        self._compressor = compressor
        self._cache: Dict[Tuple[bytes, bytes], int] = {}
        self._capacity = capacity
        self.hits = 0
        self.misses = 0
        self.evictions = 0

    def size(self, a: bytes, b: bytes) -> int:
        cache = self._cache
        key = (a, b)
        cached = cache.get(key)
        if cached is not None:
            self.hits += 1
            del cache[key]
            cache[key] = cached
            return cached
        self.misses += 1
        cached, _shared = pair_compressed_size(self._compressor, a, b)
        if self._capacity > 0:
            if len(cache) >= self._capacity:
                del cache[next(iter(cache))]
                self.evictions += 1
            cache[key] = cached
        return cached

    def stats(self) -> Dict[str, int]:
        return {
            "hits": self.hits,
            "misses": self.misses,
            "evictions": self.evictions,
            "entries": len(self._cache),
        }


class CompressedSet:
    """One set of the compressed Alloy cache.

    ``victim_policy`` selects who leaves when a newcomer does not fit:

    * ``"lru"`` (default) — least recently inserted/touched first;
    * ``"largest"`` — biggest compressed line first, which frees space
      fastest but ignores recency (an ablation point: see
      ``benchmarks/test_eviction_ablation.py``).
    """

    __slots__ = ("lines", "_lru", "tag_sharing", "victim_policy")

    def __init__(
        self, tag_sharing: bool = True, victim_policy: str = "lru"
    ) -> None:
        if victim_policy not in ("lru", "largest"):
            raise ValueError(f"unknown victim policy {victim_policy!r}")
        self.lines: Dict[int, StoredLine] = {}
        self._lru: List[int] = []  # line addresses, least recent first
        self.tag_sharing = tag_sharing
        self.victim_policy = victim_policy

    def __len__(self) -> int:
        return len(self.lines)

    def get(self, line_addr: int) -> Optional[StoredLine]:
        return self.lines.get(line_addr)

    def touch(self, line_addr: int) -> None:
        """Move a line to most-recently-used position."""
        if line_addr in self.lines:
            self._lru.remove(line_addr)
            self._lru.append(line_addr)

    def bytes_used(self, pair_sizes: Optional[PairSizeCache] = None) -> int:
        """Current byte occupancy under pair-aware accounting."""
        total = 0
        seen_pair = set()
        for addr, line in self.lines.items():
            if addr in seen_pair:
                continue
            buddy_addr = addr ^ 1
            buddy = self.lines.get(buddy_addr)
            if self.tag_sharing and buddy is not None:
                even, odd = (line, buddy) if addr % 2 == 0 else (buddy, line)
                if pair_sizes is not None:
                    data_bytes = pair_sizes.size(even.data, odd.data)
                else:
                    data_bytes = even.size + odd.size
                total += TAG_BYTES_COMPRESSED + data_bytes
                seen_pair.add(addr)
                seen_pair.add(buddy_addr)
            else:
                total += TAG_BYTES_COMPRESSED + line.size
        return total

    def would_fit(
        self,
        candidate: StoredLine,
        pair_sizes: Optional[PairSizeCache] = None,
    ) -> bool:
        """True if ``candidate`` fits alongside the current residents."""
        if len(self.lines) >= MAX_LINES_PER_SET:
            return False
        self.lines[candidate.line_addr] = candidate
        try:
            return self.bytes_used(pair_sizes) <= SET_DATA_BYTES
        finally:
            del self.lines[candidate.line_addr]

    def insert(
        self,
        candidate: StoredLine,
        pair_sizes: Optional[PairSizeCache] = None,
    ) -> List[StoredLine]:
        """Insert, evicting LRU residents until the newcomer fits.

        Returns evicted lines (dirty ones need writeback).  The candidate
        always fits alone (size <= 64, tag 4, total <= 68 <= 72).
        """
        existing = self.lines.pop(candidate.line_addr, None)
        if existing is not None:
            self._lru.remove(candidate.line_addr)
            candidate.dirty = candidate.dirty or existing.dirty
        evicted: List[StoredLine] = []
        while not self.would_fit(candidate, pair_sizes):
            if not self._lru:
                raise AssertionError("empty set cannot reject a single line")
            victim_addr = self._pick_victim()
            self._lru.remove(victim_addr)
            evicted.append(self.lines.pop(victim_addr))
        self.lines[candidate.line_addr] = candidate
        self._lru.append(candidate.line_addr)
        return evicted

    def _pick_victim(self) -> int:
        if self.victim_policy == "largest":
            return max(self._lru, key=lambda addr: self.lines[addr].size)
        return self._lru[0]

    def remove(self, line_addr: int) -> Optional[StoredLine]:
        line = self.lines.pop(line_addr, None)
        if line is not None:
            self._lru.remove(line_addr)
        return line

    def resident_addresses(self) -> Tuple[int, ...]:
        return tuple(self.lines.keys())
