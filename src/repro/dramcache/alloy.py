"""Uncompressed Alloy Cache: the paper's baseline L4 (Sec 2.3).

Direct-mapped, one 72 B TAD per set, tags inline with data.  Every access
transfers 80 B (the TAD plus the neighboring set's 8 B tag — the stacked bus
is 16 B wide so five bursts move 80 B).  The neighbor-tag visibility is what
later lets DICE resolve both candidate locations in one access.

The class exposes the common L4 interface consumed by the system model:
``read``, ``install``, ``writeback_hint`` plus counters.  Results carry both
functional payloads and finish cycles computed on the underlying
:class:`~repro.dram.device.DRAMDevice`.
"""

from __future__ import annotations

from dataclasses import dataclass, field
from typing import Dict, List, Optional, Tuple

from repro.config import DRAMCacheConfig, LINE_SIZE, TAD_TRANSFER_BYTES
from repro.dram.device import DRAMDevice
from repro.obs.tracer import NULL_TRACER


@dataclass
class L4ReadResult:
    """Outcome of a demand read probing the DRAM cache."""

    hit: bool
    data: Optional[bytes]
    finish_cycle: int
    accesses: int = 1  # DRAM-cache accesses consumed (2 on CIP mispredict)
    extra_lines: List[Tuple[int, bytes]] = field(default_factory=list)
    set_index: Optional[int] = None  # frame the hit came from (fault target)


@dataclass
class L4WriteResult:
    """Outcome of an install or writeback into the DRAM cache."""

    finish_cycle: int
    accesses: int
    writebacks: List[Tuple[int, bytes]] = field(default_factory=list)


class AlloyCache:
    """Baseline uncompressed direct-mapped DRAM cache."""

    # replaced with the run's tracer by the memory system when tracing is
    # enabled; the class-level null means standalone caches trace nothing
    tracer = NULL_TRACER

    def __init__(self, config: DRAMCacheConfig) -> None:
        if config.compressed:
            raise ValueError("AlloyCache models the uncompressed baseline")
        self.config = config
        self.num_sets = config.num_sets
        self.device = DRAMDevice(config.organization)
        # set index -> (line_addr, data, dirty)
        self._sets: Dict[int, Tuple[int, bytes, bool]] = {}
        self.read_hits = 0
        self.read_misses = 0
        self.installs = 0

    def set_index(self, line_addr: int) -> int:
        """Traditional Set Indexing: consecutive lines, consecutive sets."""
        return line_addr % self.num_sets

    def _access_device(self, set_index: int, arrival: int) -> int:
        return self.device.access(
            set_index, arrival, TAD_TRANSFER_BYTES
        ).finish_cycle

    def read(self, line_addr: int, arrival: int, pc: int = 0) -> L4ReadResult:
        """Probe the direct-mapped location; one access either way."""
        set_index = self.set_index(line_addr)
        finish = self._access_device(set_index, arrival)
        resident = self._sets.get(set_index)
        if resident is not None and resident[0] == line_addr:
            self.read_hits += 1
            return L4ReadResult(
                hit=True,
                data=resident[1],
                finish_cycle=finish,
                set_index=set_index,
            )
        self.read_misses += 1
        return L4ReadResult(hit=False, data=None, finish_cycle=finish)

    def install(
        self,
        line_addr: int,
        data: bytes,
        arrival: int,
        *,
        dirty: bool = False,
        after_demand_read: bool = True,
    ) -> L4WriteResult:
        """Fill a line, returning the dirty victim (if any) for writeback.

        ``after_demand_read=False`` marks L3 writebacks, which must first
        read the set to check residency/dirty state (one extra access).
        """
        if len(data) != LINE_SIZE:
            raise ValueError("DRAM cache stores whole lines")
        set_index = self.set_index(line_addr)
        accesses = 0
        if not after_demand_read:
            arrival = self._access_device(set_index, arrival)
            accesses += 1
        victim = self._sets.get(set_index)
        writebacks: List[Tuple[int, bytes]] = []
        if victim is not None and victim[0] != line_addr and victim[2]:
            writebacks.append((victim[0], victim[1]))
        if victim is not None and victim[0] == line_addr:
            dirty = dirty or victim[2]
        self._sets[set_index] = (line_addr, data, dirty)
        finish = self._access_device(set_index, arrival)
        accesses += 1
        self.installs += 1
        return L4WriteResult(
            finish_cycle=finish, accesses=accesses, writebacks=writebacks
        )

    def contains(self, line_addr: int) -> bool:
        resident = self._sets.get(self.set_index(line_addr))
        return resident is not None and resident[0] == line_addr

    # -- resilience hooks ----------------------------------------------------

    def invalidate(self, line_addr: int) -> bool:
        """Drop a line without writeback (detected-uncorrectable error)."""
        set_index = self.set_index(line_addr)
        resident = self._sets.get(set_index)
        if resident is not None and resident[0] == line_addr:
            del self._sets[set_index]
            return True
        return False

    def corrupt_stored(self, line_addr: int, corrupt_fn) -> Optional[bytes]:
        """Mutate a resident line's payload (silent fault propagation).

        ``corrupt_fn(old_data) -> new_data``; returns the stored corrupted
        payload, or None when the line is not resident.
        """
        set_index = self.set_index(line_addr)
        resident = self._sets.get(set_index)
        if resident is not None and resident[0] == line_addr:
            data = corrupt_fn(resident[1])
            self._sets[set_index] = (line_addr, data, resident[2])
            return data
        return None

    def pair_buddy(self, line_addr: int) -> Optional[int]:
        """Uncompressed frames hold one line: no co-located pair, ever."""
        return None

    def valid_line_count(self) -> int:
        return len(self._sets)

    @property
    def hit_rate(self) -> float:
        total = self.read_hits + self.read_misses
        return self.read_hits / total if total else 0.0

    def reset_stats(self) -> None:
        self.read_hits = 0
        self.read_misses = 0
        self.installs = 0
        self.device.reset()
