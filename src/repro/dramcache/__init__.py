"""Stacked-DRAM cache substrate: Alloy organization, set packing, predictors.

The paper builds on the Alloy Cache (Qureshi & Loh, MICRO 2012): a
direct-mapped DRAM cache whose tags live inline with data as 72 B
Tag-and-Data (TAD) entries.  Because the controller may interpret any DRAM
bit as tag or data, a 72 B set can instead hold several *compressed* lines
with dynamically allocated 4 B tags (paper Fig 5) — that flexibility is what
makes DRAM-cache compression nearly free.
"""

from repro.dramcache.alloy import AlloyCache
from repro.dramcache.cset import CompressedSet, StoredLine
from repro.dramcache.mapi import MAPIPredictor
from repro.dramcache.serializer import deserialize_set, serialize_set
from repro.dramcache.tad import SET_DATA_BYTES, TagEntry, set_layout_bytes

__all__ = [
    "AlloyCache",
    "CompressedSet",
    "StoredLine",
    "MAPIPredictor",
    "deserialize_set",
    "serialize_set",
    "SET_DATA_BYTES",
    "TagEntry",
    "set_layout_bytes",
]
