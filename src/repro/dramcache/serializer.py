"""Bit-exact on-media codec for one compressed 72 B DRAM-cache set.

`CompressedSet` tracks residency and byte budgets abstractly; this module
materializes the actual 72-byte DRAM image of Fig 5 — variable-count 4 B tag
words followed by bit-packed compressed payloads — and decodes it back.
Round-tripping through the image proves the format the paper sketches is
actually sufficient: 18-bit tags + 9 metadata bits per line really do
describe every encoding the cache stores.

Layout
------
* Tag words first, each a :class:`~repro.dramcache.tad.TagEntry`.  The
  `next_tag_valid` bit chains them; the last tag word has it clear.
* The 9 metadata bits carry: 2-bit algorithm (raw / ZCA-zero / FPC / BDI),
  3-bit BDI encoding selector, a `has_mask` bit (set when the BDI immediate
  mask must spill into the data region), and the line address's low bit
  (needed because a BAI-placed line's two possible addresses are otherwise
  indistinguishable from its set index and tag alone — see `_recover_addr`).
* Payloads follow the tags in tag order, byte-aligned.  FPC streams are
  self-terminating (they decode until 16 words are produced); BDI sizes
  follow from the selector; a spilled mask adds ceil(n/8) bytes.
* Two spatially adjacent lines stored with one shared tag (`shared` bit)
  co-compress: the second line's BDI payload drops its base.

The canonical size accounting used for packing (`StoredLine.size`) treats
selector and mask as tag metadata, per the paper.  Masks wider than the
metadata field must spill, so a mask-bearing line's *image* is up to 4 bytes
larger than its canonical size; :func:`serialize_set` therefore reports
whether the physical image fits rather than assuming it.
"""

from __future__ import annotations

from dataclasses import dataclass
from typing import List, Optional, Tuple

from repro.compression.bdi import BDIEncoding, best_encoding, try_encode
from repro.compression.fpc import FPCCompressor
from repro.config import LINE_SIZE
from repro.dramcache.cset import CompressedSet, StoredLine
from repro.dramcache.tad import SET_DATA_BYTES, TagEntry
from repro.core.indexing import bai_index, tsi_index

_ALGO_RAW = 0
_ALGO_ZERO = 1
_ALGO_FPC = 2
_ALGO_BDI = 3

# BDI selector values (3 bits): rep8 then the six (base, delta) encodings.
_BDI_SELECTORS: Tuple[Tuple[int, int], ...] = (
    (8, 1), (8, 2), (8, 4), (4, 1), (4, 2), (2, 1),
)
_SEL_REP8 = 6

_FPC_PATTERNS = (
    "zero_run", "se4", "se8", "se16",
    "half_zero", "two_half_se8", "rep_byte", "raw",
)
_FPC_RESIDUE_BITS = {
    "zero_run": 3, "se4": 4, "se8": 8, "se16": 16,
    "half_zero": 16, "two_half_se8": 16, "rep_byte": 8, "raw": 32,
}

_fpc = FPCCompressor()


class BitWriter:
    """MSB-first bit accumulator."""

    def __init__(self) -> None:
        self._bits: List[int] = []

    def write(self, value: int, nbits: int) -> None:
        if value < 0 or value >= (1 << nbits):
            raise ValueError(f"value {value} does not fit {nbits} bits")
        for i in range(nbits - 1, -1, -1):
            self._bits.append((value >> i) & 1)

    def to_bytes(self) -> bytes:
        out = bytearray()
        bits = self._bits
        for i in range(0, len(bits), 8):
            byte = 0
            for bit in bits[i : i + 8]:
                byte = (byte << 1) | bit
            byte <<= max(0, 8 - len(bits[i : i + 8]))
            out.append(byte)
        return bytes(out)

    def __len__(self) -> int:
        return len(self._bits)


class BitReader:
    """MSB-first bit consumer."""

    def __init__(self, data: bytes) -> None:
        self._data = data
        self._pos = 0

    def read(self, nbits: int) -> int:
        value = 0
        for _ in range(nbits):
            byte = self._data[self._pos >> 3]
            bit = (byte >> (7 - (self._pos & 7))) & 1
            value = (value << 1) | bit
            self._pos += 1
        return value

    @property
    def bit_position(self) -> int:
        return self._pos


# -- FPC payload <-> bits ------------------------------------------------------


def fpc_to_bytes(tokens) -> bytes:
    """Pack an FPC token stream into its hardware bit layout.

    Zero runs span 1-8 words; their 3-bit residue stores run-1.
    """
    writer = BitWriter()
    for pattern, residue in tokens:
        writer.write(_FPC_PATTERNS.index(pattern), 3)
        if pattern == "zero_run":
            residue -= 1
        writer.write(residue, _FPC_RESIDUE_BITS[pattern])
    return writer.to_bytes()


def fpc_from_bytes(data: bytes) -> Tuple[tuple, int]:
    """Decode an FPC stream; returns (tokens, bytes consumed)."""
    reader = BitReader(data)
    tokens = []
    words = 0
    while words < LINE_SIZE // 4:
        pattern = _FPC_PATTERNS[reader.read(3)]
        residue = reader.read(_FPC_RESIDUE_BITS[pattern])
        if pattern == "zero_run":
            residue += 1
        tokens.append((pattern, residue))
        words += residue if pattern == "zero_run" else 1
    return tuple(tokens), (reader.bit_position + 7) // 8


# -- BDI payload <-> bits -------------------------------------------------------


def _mask_bytes(enc: BDIEncoding) -> int:
    return (enc.num_elements + 7) // 8


def _needs_mask(enc: BDIEncoding) -> bool:
    return any(enc.from_zero)


def bdi_to_bytes(enc: BDIEncoding, *, drop_base: bool = False) -> bytes:
    """Pack base (unless shared/dropped) + deltas (+ spilled mask)."""
    out = bytearray()
    if not drop_base:
        out += enc.base.to_bytes(enc.base_bytes, "little")
    half = 1 << (8 * enc.delta_bytes - 1)
    mask_range = 1 << (8 * enc.delta_bytes)
    for delta in enc.deltas:
        out += (delta & (mask_range - 1)).to_bytes(enc.delta_bytes, "little")
    if _needs_mask(enc):
        mask_value = 0
        for i, flag in enumerate(enc.from_zero):
            if flag:
                mask_value |= 1 << i
        out += mask_value.to_bytes(_mask_bytes(enc), "little")
    return bytes(out)


def bdi_from_bytes(
    data: bytes,
    base_bytes: int,
    delta_bytes: int,
    *,
    has_mask: bool,
    shared_base: Optional[int] = None,
) -> Tuple[BDIEncoding, int]:
    """Decode one BDI payload; returns (encoding, bytes consumed)."""
    pos = 0
    if shared_base is None:
        base = int.from_bytes(data[:base_bytes], "little")
        pos = base_bytes
    else:
        base = shared_base
    count = LINE_SIZE // base_bytes
    half = 1 << (8 * delta_bytes - 1)
    deltas = []
    for _ in range(count):
        raw = int.from_bytes(data[pos : pos + delta_bytes], "little")
        deltas.append(raw - (1 << (8 * delta_bytes)) if raw >= half else raw)
        pos += delta_bytes
    from_zero = [False] * count
    if has_mask:
        nmask = (count + 7) // 8
        mask_value = int.from_bytes(data[pos : pos + nmask], "little")
        from_zero = [(mask_value >> i) & 1 == 1 for i in range(count)]
        pos += nmask
    return (
        BDIEncoding(
            base_bytes=base_bytes,
            delta_bytes=delta_bytes,
            base=base,
            deltas=tuple(deltas),
            from_zero=tuple(from_zero),
        ),
        pos,
    )


# -- per-line encoding choice ----------------------------------------------------


@dataclass
class _LinePlan:
    """How one stored line (or shared pair) will appear in the image."""

    line: StoredLine
    algo: int
    selector: int = 0
    encoding: Optional[BDIEncoding] = None
    payload: bytes = b""
    shares_with_prev: bool = False  # second half of a shared-tag pair
    pair_buddy: Optional[StoredLine] = None  # odd line riding this tag


def _plan_line(line: StoredLine, shared_base_enc: Optional[BDIEncoding]) -> _LinePlan:
    data = line.data
    if data == bytes(LINE_SIZE):
        return _LinePlan(line, _ALGO_ZERO, payload=b"\x00")
    if shared_base_enc is not None:
        follow = try_encode(
            data,
            shared_base_enc.base_bytes,
            shared_base_enc.delta_bytes,
            base=shared_base_enc.base,
        )
        if follow is not None:
            return _LinePlan(
                line,
                _ALGO_BDI,
                selector=_BDI_SELECTORS.index(
                    (follow.base_bytes, follow.delta_bytes)
                ),
                encoding=follow,
                payload=bdi_to_bytes(follow, drop_base=True),
                shares_with_prev=True,
            )
    if data == data[:8] * 8:
        return _LinePlan(
            line, _ALGO_BDI, selector=_SEL_REP8, payload=data[:8]
        )
    bdi_enc = best_encoding(data)
    fpc_line = _fpc.compress(data)
    bdi_size = bdi_enc.size + (_mask_bytes(bdi_enc) if _needs_mask(bdi_enc) else 0) if bdi_enc else LINE_SIZE + 1
    if bdi_enc is not None and bdi_size <= fpc_line.size and bdi_size < LINE_SIZE:
        return _LinePlan(
            line,
            _ALGO_BDI,
            selector=_BDI_SELECTORS.index((bdi_enc.base_bytes, bdi_enc.delta_bytes)),
            encoding=bdi_enc,
            payload=bdi_to_bytes(bdi_enc),
        )
    if fpc_line.size < LINE_SIZE:
        return _LinePlan(
            line, _ALGO_FPC, payload=fpc_to_bytes(fpc_line.payload)
        )
    return _LinePlan(line, _ALGO_RAW, payload=data)


def _plan_set(cset: CompressedSet) -> List[_LinePlan]:
    """Plan encodings; a sharable adjacent pair collapses onto one tag.

    A pair shares a tag (and the lead's BDI base) when the even line
    BDI-encodes, the odd line encodes against the same base/widths, and
    neither needs a spilled immediate mask — the hardware's shared-tag
    fast path.  Anything else gets its own tag word.
    """
    plans: List[_LinePlan] = []
    done = set()
    for addr in sorted(cset.lines):
        if addr in done:
            continue
        line = cset.lines[addr]
        lead = _plan_line(line, None)
        done.add(addr)
        buddy = (
            cset.lines.get(addr + 1)
            if cset.tag_sharing and addr % 2 == 0
            else None
        )
        if (
            buddy is not None
            and lead.encoding is not None
            and not _needs_mask(lead.encoding)
        ):
            follower = _plan_line(buddy, lead.encoding)
            if (
                follower.shares_with_prev
                and follower.encoding is not None
                and not _needs_mask(follower.encoding)
            ):
                lead.pair_buddy = buddy
                lead.payload += follower.payload
                done.add(addr + 1)
        plans.append(lead)
    return plans


# -- set <-> image ------------------------------------------------------------------


def _metadata(plan: _LinePlan, addr_lsb: int) -> int:
    has_mask = int(
        plan.algo == _ALGO_BDI
        and plan.encoding is not None
        and _needs_mask(plan.encoding)
    )
    return (
        plan.algo
        | (plan.selector << 2)
        | (has_mask << 5)
        | (addr_lsb << 6)
    )


def serialize_set(
    cset: CompressedSet, num_sets: int, set_index: int
) -> Optional[bytes]:
    """Render the 72 B image, or None if the physical layout cannot fit.

    (Canonical accounting counts BDI masks as tag metadata; a set packed to
    exactly 72 canonical bytes whose lines carry spilled masks may not have
    a physical image.)
    """
    plans = _plan_set(cset)
    if not plans:
        return bytes(SET_DATA_BYTES)
    tag_words = bytearray()
    payload = bytearray()
    for i, plan in enumerate(plans):
        addr = plan.line.line_addr
        dirty = plan.line.dirty or (
            plan.pair_buddy is not None and plan.pair_buddy.dirty
        )
        entry = TagEntry(
            tag=addr // num_sets,
            valid=True,
            dirty=dirty,
            next_tag_valid=i + 1 < len(plans),
            bai=plan.line.bai,
            shared=plan.pair_buddy is not None,
            metadata=_metadata(plan, addr & 1),
        )
        tag_words += entry.encode().to_bytes(4, "little")
        payload += plan.payload
    image = bytes(tag_words) + bytes(payload)
    if len(image) > SET_DATA_BYTES:
        return None
    return image + bytes(SET_DATA_BYTES - len(image))


def _recover_addr(entry: TagEntry, num_sets: int, set_index: int) -> int:
    """Invert the tag: the set index, tag bits, and stored address LSB
    pin the line address under either indexing scheme."""
    addr_lsb = (entry.metadata >> 6) & 1
    tag = entry.tag
    if not entry.bai:
        residue = set_index
        addr = tag * num_sets + residue
        if addr & 1 != addr_lsb:  # TSI residue fixes parity; must agree
            raise ValueError("corrupt tag: TSI parity mismatch")
        return addr
    residue = (set_index & ~1) | addr_lsb
    for candidate_residue in (residue, residue ^ 1):
        addr = tag * num_sets + candidate_residue
        if addr & 1 == addr_lsb and bai_index(addr, num_sets) == set_index:
            return addr
    raise ValueError("corrupt tag: no address maps here under BAI")


def deserialize_set(
    image: bytes, num_sets: int, set_index: int
) -> List[StoredLine]:
    """Decode a 72 B image back into stored lines with exact data."""
    if len(image) != SET_DATA_BYTES:
        raise ValueError(f"expected a {SET_DATA_BYTES} B image")
    entries: List[TagEntry] = []
    pos = 0
    while True:
        word = int.from_bytes(image[pos : pos + 4], "little")
        entry = TagEntry.decode(word)
        if not entry.valid and not entries:
            return []  # empty set sentinel (all-zero image)
        entries.append(entry)
        pos += 4
        if not entry.next_tag_valid:
            break
    lines: List[StoredLine] = []
    payload = image[pos:]
    offset = 0
    from repro.compression.bdi import decode as bdi_decode

    def emit(
        addr: int, data: bytes, entry: TagEntry, *, shared_member: bool = False
    ) -> None:
        # A shared tag carries one BAI bit for two lines whose placement
        # status can differ (one may be at its TSI position).  The bit's
        # physical meaning is "not at the TSI location", so for pair
        # members it is recomputed from the indexing itself.
        if shared_member:
            bai = tsi_index(addr, num_sets) != set_index
        else:
            bai = entry.bai
        lines.append(
            StoredLine(
                line_addr=addr,
                data=data,
                size=len(data),  # canonical size not stored on media
                dirty=entry.dirty,
                bai=bai,
            )
        )

    for entry in entries:
        algo = entry.metadata & 0x3
        selector = (entry.metadata >> 2) & 0x7
        has_mask = bool((entry.metadata >> 5) & 1)
        addr = _recover_addr(entry, num_sets, set_index)
        if algo == _ALGO_ZERO:
            emit(addr, bytes(LINE_SIZE), entry)
            offset += 1
        elif algo == _ALGO_RAW:
            emit(addr, bytes(payload[offset : offset + LINE_SIZE]), entry)
            offset += LINE_SIZE
        elif algo == _ALGO_FPC:
            tokens, consumed = fpc_from_bytes(payload[offset:])
            from repro.compression.base import CompressedLine

            emit(
                addr,
                _fpc.decompress(CompressedLine("fpc", min(64, consumed), tokens)),
                entry,
            )
            offset += consumed
        elif selector == _SEL_REP8:  # BDI repeated 8-byte value
            emit(addr, bytes(payload[offset : offset + 8]) * 8, entry)
            offset += 8
        else:  # BDI base+delta, possibly a shared-tag pair
            base_bytes, delta_bytes = _BDI_SELECTORS[selector]
            enc, consumed = bdi_from_bytes(
                payload[offset:], base_bytes, delta_bytes, has_mask=has_mask
            )
            emit(addr, bdi_decode(enc), entry, shared_member=entry.shared)
            offset += consumed
            if entry.shared:
                follower, consumed = bdi_from_bytes(
                    payload[offset:],
                    base_bytes,
                    delta_bytes,
                    has_mask=False,
                    shared_base=enc.base,
                )
                emit(addr + 1, bdi_decode(follower), entry, shared_member=True)
                offset += consumed
    return lines
