"""System configuration for the DICE reproduction.

The paper (Table 2) evaluates an 8-core system with a 1 GB stacked-DRAM
cache (HBM-style: 4 channels, 128-bit bus) in front of DDR main memory
(1 channel, 64-bit bus).  Device latencies of the two DRAM technologies are
identical; the stacked part provides 8x the bandwidth.

Simulating a full 1 GB cache trace-by-trace in Python is impractical, so the
default configuration is a *scaled* system: every capacity (cache size, L3
size, workload footprint) is divided by the same factor, preserving every
ratio the paper's results depend on.  ``SystemConfig.paper_scale(n)`` builds
such a config; ``paper_scale(1)`` is the full-size paper machine.
"""

from __future__ import annotations

import dataclasses
from dataclasses import dataclass, field
from typing import Optional

LINE_SIZE = 64
"""Cache line size in bytes, used at every level of the hierarchy."""

TAD_BYTES = 72
"""Tag-and-data entry: 8 B tag + 64 B data (Alloy cache, Fig 2)."""

TAD_TRANSFER_BYTES = 80
"""Bytes moved per Alloy access: one 72 B TAD + the 8 B neighbor tag."""

TAG_BYTES_COMPRESSED = 4
"""Per-line tag cost inside a compressed set (Fig 5)."""

MAX_LINES_PER_SET = 28
"""Upper bound on compressed lines stored in one 72 B set (Sec 4.3)."""


@dataclass(frozen=True)
class DRAMTimings:
    """Device timing parameters, in CPU cycles (Table 2 uses a 3.2 GHz core
    against 800 MHz DRAM, i.e. 4 CPU cycles per DRAM cycle)."""

    tCAS: int = 44
    tRCD: int = 44
    tRP: int = 44
    tRAS: int = 112
    cpu_cycles_per_bus_cycle: float = 2.0  # 3.2 GHz CPU / 1.6 GHz DDR bus

    def scaled_latency(self, factor: float) -> "DRAMTimings":
        """Return timings with access latencies scaled by ``factor``.

        Used by the half-latency sensitivity study (Table 8).
        """
        return dataclasses.replace(
            self,
            tCAS=max(1, round(self.tCAS * factor)),
            tRCD=max(1, round(self.tRCD * factor)),
            tRP=max(1, round(self.tRP * factor)),
            tRAS=max(1, round(self.tRAS * factor)),
        )


@dataclass(frozen=True)
class DRAMOrganization:
    """Channel/bank organization of one DRAM pool."""

    channels: int
    banks_per_channel: int
    bus_bytes: int  # bus width in bytes (per channel, per bus cycle edge)
    row_buffer_bytes: int = 2048
    timings: DRAMTimings = field(default_factory=DRAMTimings)

    def burst_cycles(self, nbytes: int) -> int:
        """CPU cycles the channel bus is occupied transferring ``nbytes``.

        A DDR bus moves ``bus_bytes`` per edge, two edges per bus cycle.
        """
        edges = max(1, -(-nbytes // self.bus_bytes))  # ceil division
        bus_cycles = max(1, -(-edges // 2))
        return max(1, round(bus_cycles * self.timings.cpu_cycles_per_bus_cycle))


@dataclass(frozen=True)
class SRAMCacheConfig:
    """Geometry of one on-chip SRAM cache level."""

    capacity_bytes: int
    associativity: int
    latency_cycles: int

    @property
    def num_lines(self) -> int:
        return self.capacity_bytes // LINE_SIZE

    @property
    def num_sets(self) -> int:
        return max(1, self.num_lines // self.associativity)


@dataclass(frozen=True)
class DRAMCacheConfig:
    """The L4 stacked-DRAM cache (Alloy organization)."""

    capacity_bytes: int
    organization: DRAMOrganization
    compressed: bool = False
    index_scheme: str = "tsi"  # "tsi" | "nsi" | "bai" | "dice"
    dice_threshold: int = 36  # bytes; insertion-policy threshold (Sec 5.2)
    cip_entries: int = 2048  # Last-Time-Table entries (Sec 5.3)
    cip_mode: str = "ltt"  # "ltt" | "oracle" | "none" (always probe both)
    tag_sharing: bool = True  # share tags for co-compressed neighbors
    neighbor_tag_visible: bool = True  # Alloy streams neighbor tag; KNL: False
    victim_policy: str = "lru"  # compressed-set eviction: "lru" | "largest"

    @property
    def num_sets(self) -> int:
        """Direct-mapped: one line-sized frame per set."""
        return self.capacity_bytes // LINE_SIZE


@dataclass(frozen=True)
class CoreConfig:
    """Cycle-accounting model of one core (stand-in for USIMM's OoO core).

    ``base_ipc`` and ``mlp`` are calibrated jointly against the paper's
    Fig 1(f) anchors: doubling the DRAM cache's capacity should buy ~10%
    and doubling capacity+bandwidth ~22%.  A 4-wide out-of-order core hides
    much of the memory latency (high ``mlp``) and spends real time on
    compute between misses (moderate ``base_ipc``).
    """

    num_cores: int = 8
    base_ipc: float = 1.0  # retired instructions per cycle when not stalled
    mlp: float = 8.0  # overlapping outstanding misses per core
    l1_hit_cycles: int = 4


@dataclass(frozen=True)
class SystemConfig:
    """Complete machine description handed to the simulator."""

    core: CoreConfig
    l3: SRAMCacheConfig
    l4: DRAMCacheConfig
    memory: DRAMOrganization
    scale: int = 256  # capacities are paper values divided by this
    l3_install_neighbors: bool = True  # install co-fetched lines into L3
    l3_prefetch: str = "none"  # "none" | "nextline" | "wide128"
    name: str = "base"

    @staticmethod
    def paper_scale(
        scale: int = 256,
        *,
        compressed: bool = False,
        index_scheme: str = "tsi",
        l4_capacity_mult: float = 1.0,
        l4_channel_mult: int = 1,
        l4_latency_factor: float = 1.0,
        name: Optional[str] = None,
        **l4_overrides,
    ) -> "SystemConfig":
        """Build the Table 2 machine scaled down by ``scale``.

        Keyword knobs express the paper's sensitivity axes: capacity
        multiplier (2x Capacity), channel multiplier (2x BW), latency factor
        (50% latency), and any `DRAMCacheConfig` field override.
        """
        l4_capacity = int(1 << 30) // scale
        l4_capacity = int(l4_capacity * l4_capacity_mult)
        stacked = DRAMOrganization(
            channels=4 * l4_channel_mult,
            banks_per_channel=16,
            bus_bytes=16,
            timings=DRAMTimings().scaled_latency(l4_latency_factor),
        )
        ddr = DRAMOrganization(channels=1, banks_per_channel=16, bus_bytes=8)
        l4 = DRAMCacheConfig(
            capacity_bytes=l4_capacity,
            organization=stacked,
            compressed=compressed,
            index_scheme=index_scheme,
            **l4_overrides,
        )
        # The L3 shrinks by a gentler factor than the DRAM structures: at
        # full scale the paper's L3 captures reuse distances up to 8 MB, and
        # scaling it by the same 1/scale would leave too few sets for any
        # temporal locality to register.  scale/8 keeps the L3:footprint
        # ordering (footprints still dwarf it) while preserving a usable set
        # count; see DESIGN.md Sec 5.
        l3_scale = max(1, scale // 8)
        l3 = SRAMCacheConfig(
            capacity_bytes=max(16 << 10, (8 << 20) // l3_scale),
            associativity=8,
            latency_cycles=30,
        )
        cfg_name = name or (f"{index_scheme}" if compressed else "alloy")
        return SystemConfig(
            core=CoreConfig(),
            l3=l3,
            l4=l4,
            memory=ddr,
            scale=scale,
            name=cfg_name,
        )

    def with_l4(self, **overrides) -> "SystemConfig":
        """Return a copy with `DRAMCacheConfig` fields replaced."""
        return dataclasses.replace(
            self, l4=dataclasses.replace(self.l4, **overrides)
        )
