"""Observability helpers: latency histograms and windowed bandwidth.

The headline metrics (hit rates, IPC, energy) live in
:class:`~repro.sim.metrics.SimResult`; this module provides the deeper
instruments a memory-system study reaches for when a number looks odd —
latency distributions (to see queueing tails) and time-windowed bandwidth
(to see saturation phases).
"""

from __future__ import annotations

import bisect
from dataclasses import dataclass, field
from typing import Dict, List, Sequence, Tuple


class LatencyHistogram:
    """Log-bucketed latency histogram (cycles)."""

    # bucket upper bounds, cycles; the last bucket is open-ended
    DEFAULT_BOUNDS = (16, 32, 64, 128, 256, 512, 1024, 2048, 4096, 8192)

    def __init__(self, bounds: Sequence[int] = DEFAULT_BOUNDS) -> None:
        if list(bounds) != sorted(bounds) or len(set(bounds)) != len(bounds):
            raise ValueError("bounds must be strictly increasing")
        self.bounds: Tuple[int, ...] = tuple(bounds)
        self.counts: List[int] = [0] * (len(self.bounds) + 1)
        self.total = 0
        self.sum = 0
        self.max = 0

    def record(self, latency: int) -> None:
        if latency < 0:
            raise ValueError("latency must be non-negative")
        index = bisect.bisect_left(self.bounds, latency)
        self.counts[index] += 1
        self.total += 1
        self.sum += latency
        if latency > self.max:
            self.max = latency

    def reset(self) -> None:
        """Zero every bucket in place (references stay valid)."""
        self.counts = [0] * (len(self.bounds) + 1)
        self.total = 0
        self.sum = 0
        self.max = 0

    def merge(self, other: "LatencyHistogram") -> "LatencyHistogram":
        """Fold another histogram into this one (returns self).

        Worker processes each record their own job's latencies; the
        campaign layer merges them into machine-level aggregates.  Both
        histograms must share bucket bounds — merging differently
        bucketed distributions would silently misbin.
        """
        if self.bounds != other.bounds:
            raise ValueError(
                f"cannot merge histograms with different bounds: "
                f"{self.bounds} vs {other.bounds}"
            )
        for i, count in enumerate(other.counts):
            self.counts[i] += count
        self.total += other.total
        self.sum += other.sum
        if other.max > self.max:
            self.max = other.max
        return self

    @property
    def mean(self) -> float:
        return self.sum / self.total if self.total else 0.0

    def percentile(self, p: float) -> int:
        """Approximate percentile: the upper bound of the bucket where the
        p-quantile falls (max for the open-ended bucket)."""
        if not 0.0 < p <= 100.0:
            raise ValueError("p must be in (0, 100]")
        if self.total == 0:
            return 0
        target = self.total * p / 100.0
        running = 0
        for i, count in enumerate(self.counts):
            running += count
            if running >= target:
                return self.bounds[i] if i < len(self.bounds) else self.max
        return self.max

    def quantiles(self) -> Dict[str, int]:
        """The tail summary a latency distribution is usually asked for."""
        return {
            "p50": self.percentile(50),
            "p95": self.percentile(95),
            "p99": self.percentile(99),
        }

    def to_dict(self) -> Dict[str, object]:
        """JSON-ready snapshot (``metrics.json``, cache shards).

        Includes the derived ``quantiles`` block for readers;
        :meth:`from_dict` ignores it, so the round trip is exact.
        """
        return {
            "bounds": list(self.bounds),
            "counts": list(self.counts),
            "total": self.total,
            "sum": self.sum,
            "max": self.max,
            "quantiles": self.quantiles(),
        }

    @classmethod
    def from_dict(cls, d: Dict[str, object]) -> "LatencyHistogram":
        hist = cls(bounds=tuple(d["bounds"]))
        counts = [int(c) for c in d["counts"]]
        if len(counts) != len(hist.counts):
            raise ValueError(
                f"counts length {len(counts)} does not match "
                f"{len(hist.bounds)} bounds"
            )
        hist.counts = counts
        hist.total = int(d["total"])
        hist.sum = int(d["sum"])
        hist.max = int(d["max"])
        return hist

    def rows(self) -> List[Tuple[str, int, float]]:
        """(label, count, fraction) per bucket, for table rendering."""
        labels = []
        low = 0
        for bound in self.bounds:
            labels.append(f"{low}-{bound}")
            low = bound + 1
        labels.append(f">{self.bounds[-1]}")
        return [
            (label, count, count / self.total if self.total else 0.0)
            for label, count in zip(labels, self.counts)
        ]


@dataclass
class BandwidthTracker:
    """Bytes moved per fixed-size cycle window."""

    window_cycles: int = 10_000
    _windows: Dict[int, int] = field(default_factory=dict)

    def record(self, cycle: int, nbytes: int) -> None:
        if cycle < 0 or nbytes < 0:
            raise ValueError("cycle and bytes must be non-negative")
        self._windows[cycle // self.window_cycles] = (
            self._windows.get(cycle // self.window_cycles, 0) + nbytes
        )

    def reset(self) -> None:
        """Drop every window in place (references stay valid)."""
        self._windows.clear()

    def to_dict(self) -> Dict[str, object]:
        """JSON-ready snapshot; ``windows`` is a list of (index, bytes)
        pairs because JSON objects cannot key on integers."""
        return {
            "window_cycles": self.window_cycles,
            "windows": [[w, b] for w, b in sorted(self._windows.items())],
            "peak_bytes_per_cycle": self.peak_bytes_per_cycle,
            "mean_bytes_per_cycle": self.mean_bytes_per_cycle,
        }

    @classmethod
    def from_dict(cls, d: Dict[str, object]) -> "BandwidthTracker":
        tracker = cls(window_cycles=int(d["window_cycles"]))
        for window, nbytes in d["windows"]:
            tracker._windows[int(window)] = int(nbytes)
        return tracker

    def merge(self, other: "BandwidthTracker") -> "BandwidthTracker":
        """Fold another tracker into this one (returns self).

        Windows are aligned by absolute cycle, so merging per-job trackers
        from parallel workers gives the same series a single serial run
        would have recorded.  Window sizes must match.
        """
        if self.window_cycles != other.window_cycles:
            raise ValueError(
                f"cannot merge trackers with different windows: "
                f"{self.window_cycles} vs {other.window_cycles}"
            )
        for window, nbytes in other._windows.items():
            self._windows[window] = self._windows.get(window, 0) + nbytes
        return self

    def series(self) -> List[Tuple[int, float]]:
        """(window start cycle, bytes/cycle) sorted by time."""
        return [
            (w * self.window_cycles, total / self.window_cycles)
            for w, total in sorted(self._windows.items())
        ]

    @property
    def peak_bytes_per_cycle(self) -> float:
        if not self._windows:
            return 0.0
        return max(self._windows.values()) / self.window_cycles

    @property
    def mean_bytes_per_cycle(self) -> float:
        if not self._windows:
            return 0.0
        span = (max(self._windows) - min(self._windows) + 1) * self.window_cycles
        return sum(self._windows.values()) / span


def ascii_bar_chart(
    rows: Sequence[Tuple[str, float]], width: int = 40, unit: str = ""
) -> str:
    """Render (label, value) rows as a fixed-width ASCII bar chart."""
    if not rows:
        return "(no data)"
    peak = max(value for _, value in rows) or 1.0
    label_width = max(len(label) for label, _ in rows)
    lines = []
    for label, value in rows:
        bar = "#" * max(0, round(width * value / peak))
        lines.append(f"{label.ljust(label_width)} |{bar} {value:.3g}{unit}")
    return "\n".join(lines)
