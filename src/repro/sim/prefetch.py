"""L3 prefetch comparison points (Table 7).

The paper contrasts DICE's free adjacent-line delivery with two designs that
fetch an extra line *explicitly*, each costing an independent DRAM-cache
request:

* ``wide128`` — the L3 fetches 128 B granules: every demand miss issues a
  second request for the other half of the 128 B block (the buddy line);
* ``nextline`` — a demand miss issues a prefetch for the next sequential
  line.

Prefetches that miss the DRAM cache are dropped (no memory fetch), so their
cost is pure L4 bandwidth — exactly the overhead Table 7 quantifies.
"""

from __future__ import annotations

from typing import Optional


def prefetch_target(mode: str, line_addr: int) -> Optional[int]:
    """Address the prefetcher requests alongside a demand miss, if any."""
    if mode == "none":
        return None
    if mode == "wide128":
        return line_addr ^ 1
    if mode == "nextline":
        return line_addr + 1
    raise ValueError(f"unknown prefetch mode {mode!r}")
