"""Multi-core simulation loop and the per-run entry point.

Cores execute in a global-time-ordered loop (the earliest core issues next),
so contention for the shared L3, DRAM-cache banks and DDR bus emerges from
the devices' next-free times.  Each core charges compute cycles from the
trace's instruction gaps and an amortized stall for each memory access — the
stand-in for out-of-order overlap (bounded memory-level parallelism).
"""

from __future__ import annotations

import heapq
import time
from dataclasses import dataclass
from typing import List, Optional

from repro import obs
from repro.config import SystemConfig
from repro.sim.energy import EnergyParams, total_energy_nj
from repro.sim.metrics import SimResult
from repro.sim.system import MemorySystem
from repro.workloads.base import TraceGenerator
from repro.workloads.registry import get_profile, is_mix, mix_members

CORE_ADDRESS_STRIDE = 1 << 40
"""Per-core virtual address offset (cores do not share data in rate mode)."""


@dataclass(frozen=True)
class SimulationParams:
    """Run-length knobs, independent of the machine configuration."""

    accesses_per_core: int = 6000
    warmup_fraction: float = 0.35
    seed: int = 7
    capacity_sample_every: int = 512  # accesses between capacity samples
    # resilience knobs (fault_rate == 0.0 leaves the fault-free fast path
    # untouched: no injector is built and results are bit-identical)
    fault_rate: float = 0.0  # injected faults per GB-hour of simulated time
    ecc: str = "secded"  # "secded" | "none" (see repro.resilience.ecc)


def _build_generators(
    workload: str, config: SystemConfig, params: SimulationParams
) -> List[TraceGenerator]:
    """One trace generator per core (rate mode or a mix)."""
    num_cores = config.core.num_cores
    if is_mix(workload):
        names = mix_members(workload)
        if len(names) != num_cores:
            raise ValueError(
                f"mix {workload!r} defines {len(names)} members for "
                f"{num_cores} cores"
            )
    else:
        names = [workload] * num_cores
    return [
        TraceGenerator(
            get_profile(name),
            scale=config.scale,
            seed=params.seed + core,
            core_offset=core * CORE_ADDRESS_STRIDE,
        )
        for core, name in enumerate(names)
    ]


def _build_injector(config: SystemConfig, params: SimulationParams):
    """FaultInjector for this run, or None when injection is disabled."""
    if params.fault_rate <= 0.0:
        return None
    from repro.resilience import FaultInjector, FaultModel

    return FaultInjector(
        FaultModel(rate_per_gb_hour=params.fault_rate),
        capacity_bytes=config.l4.capacity_bytes,
        ecc=params.ecc,
        seed=params.seed,
    )


class _DataRouter:
    """Routes line addresses to the owning core's data factory."""

    def __init__(self, generators: List[TraceGenerator]) -> None:
        self._generators = generators

    def __call__(self, line_addr: int) -> bytes:
        core = min(
            line_addr // CORE_ADDRESS_STRIDE, len(self._generators) - 1
        )
        return self._generators[core].line_data(line_addr)


def run_workload(
    workload: str,
    config: SystemConfig,
    params: Optional[SimulationParams] = None,
    energy_params: EnergyParams = EnergyParams(),
) -> SimResult:
    """Simulate one workload on one machine configuration."""
    params = params or SimulationParams()
    run_obs = obs.begin_run(f"{workload}x{config.name}")
    tracer = run_obs.tracer
    prof = run_obs.profiler
    recorder = run_obs.recorder
    started = time.perf_counter()
    if prof.enabled:
        prof.enter("sim")
    generators = _build_generators(workload, config, params)
    system = MemorySystem(
        config,
        _DataRouter(generators),
        fault_injector=_build_injector(config, params),
        obs=run_obs,
    )
    tracer.set_phase("warmup")

    num_cores = config.core.num_cores
    ipc = config.core.base_ipc
    mlp = config.core.mlp
    # Access quotas are instruction-matched: every core targets the same
    # instruction count (like the paper's 4B-instructions-per-benchmark
    # rule), so a mix's low-intensity cores serve proportionally fewer
    # accesses and all cores finish at comparable simulated times.
    max_apki = max(g.profile.l3_apki for g in generators)
    quotas = [
        max(64, int(params.accesses_per_core * g.profile.l3_apki / max_apki))
        for g in generators
    ]
    warmups = [int(q * params.warmup_fraction) for q in quotas]

    times = [0.0] * num_cores
    insts = [0] * num_cores
    served = [0] * num_cores
    if prof.enabled:
        # The profiled loop attributes generator time per access, so it
        # keeps the one-at-a-time iterator protocol.
        iters = [iter(g) for g in generators]
    else:
        # Chunked synthesis: each core refills a preallocated buffer of
        # trace records in batches, replacing a generator resume per
        # access with a list index.  The access sequence is identical
        # (chunks() drains the same iterator), so results are too.
        chunk = TraceGenerator.DEFAULT_CHUNK
        chunk_iters = [g.chunks(chunk) for g in generators]
        bufs = [next(ci) for ci in chunk_iters]
        idxs = [0] * num_cores
    heap = [(0.0, core) for core in range(num_cores)]
    heapq.heapify(heap)

    # Per-core measurement windows.  Mixed workloads have wildly different
    # per-core intensities, so cores reach their access quotas at very
    # different simulated times; like the paper (Sec 3.2: run "until all
    # benchmarks ... execute at least 4 billion instructions each"), cores
    # that finish keep running to maintain contention, and each core's IPC
    # covers its own warmup->quota window.
    warm_times: List[Optional[float]] = [None] * num_cores
    warm_insts: List[int] = [0] * num_cores
    end_times: List[Optional[float]] = [None] * num_cores
    end_insts: List[int] = [0] * num_cores
    capacity_samples: List[int] = []
    accesses_since_sample = 0
    stats_reset_done = False
    reset_cycle = 0

    while heap:
        now, core = heapq.heappop(heap)
        if prof.enabled:
            # Duplicated branch keeps the unprofiled loop body untouched:
            # no frame bookkeeping, no extra attribute loads per access.
            prof.enter("workload.gen")
            access = next(iters[core])
            prof.exit()
            t = times[core] + access.inst_gap / ipc
            prof.enter("system.access")
            finish = system.handle_access(access, int(t))
            prof.exit(max(0, int(finish - t)))
        else:
            i = idxs[core]
            if i >= chunk:
                bufs[core] = next(chunk_iters[core])
                i = 0
            access = bufs[core][i]
            idxs[core] = i + 1
            t = times[core] + access.inst_gap / ipc
            finish = system.handle_access(access, int(t))
        stall = max(0.0, (finish - t) / mlp)
        times[core] = t + stall
        insts[core] += access.inst_gap
        served[core] += 1

        if stats_reset_done:
            accesses_since_sample += 1
            if accesses_since_sample >= params.capacity_sample_every:
                capacity_samples.append(system.l4.valid_line_count())
                accesses_since_sample = 0
                # Time-series sampling shares the capacity-sample cadence
                # (simulated cycles as the timestamp): deterministic, no
                # wall-clock reads, zero added per-access work when off.
                if recorder.enabled:
                    recorder.tick(system.metrics, ts=int(now))

        if warm_times[core] is None and served[core] >= warmups[core]:
            warm_times[core] = times[core]
            warm_insts[core] = insts[core]
        if end_times[core] is None and served[core] >= quotas[core]:
            end_times[core] = times[core]
            end_insts[core] = insts[core]

        if not stats_reset_done and all(w is not None for w in warm_times):
            system.reset_stats()
            stats_reset_done = True
            reset_cycle = int(max(w for w in warm_times if w is not None))
            if tracer.enabled:
                tracer.span(
                    "sim.warmup", "sim", 0, max(1, reset_cycle),
                    accesses=sum(warmups),
                )
            # events after this carry phase="measure", so a trace replay
            # can reconstruct the same window SimResult reports
            tracer.set_phase("measure")

        if any(e is None for e in end_times):
            heapq.heappush(heap, (times[core], core))

    window_cycles = max(
        1.0,
        max(
            end_times[c] - (warm_times[c] or 0.0) for c in range(num_cores)
        ),
    )
    window_insts = sum(end_insts[c] - warm_insts[c] for c in range(num_cores))
    per_core_ipc = [
        (end_insts[c] - warm_insts[c])
        / max(1.0, end_times[c] - (warm_times[c] or 0.0))
        for c in range(num_cores)
    ]

    l4 = system.l4
    l4_accesses = l4.device.total_accesses
    l4_bytes = l4.device.total_bytes_transferred
    mem_accesses = system.memory.device.total_accesses
    mem_bytes = system.memory.device.total_bytes_transferred
    energy = total_energy_nj(
        window_cycles, l4_accesses, l4_bytes, mem_accesses, mem_bytes,
        energy_params,
    )
    if not capacity_samples:
        capacity_samples.append(l4.valid_line_count())
    capacity = (sum(capacity_samples) / len(capacity_samples)) / l4.config.num_sets

    result = SimResult(
        workload=workload,
        config_name=config.name,
        cycles=window_cycles,
        instructions=window_insts,
        per_core_ipc=per_core_ipc,
        l3_hit_rate=system.hierarchy.hit_rate,
        l4_hit_rate=l4.hit_rate,
        l4_accesses=l4_accesses,
        l4_bytes=l4_bytes,
        mem_accesses=mem_accesses,
        mem_bytes=mem_bytes,
        energy_nj=energy,
        effective_capacity=capacity,
        mapi_accuracy=system.mapi.accuracy,
        l3_bonus_installs=system.hierarchy.bonus_installs,
        l3_bonus_hits=system.hierarchy.bonus_hits,
    )
    cip = getattr(l4, "cip", None)
    if cip is not None:
        result.cip_accuracy = cip.accuracy
    if hasattr(l4, "write_prediction_accuracy"):
        result.cip_write_accuracy = l4.write_prediction_accuracy
    if hasattr(l4, "index_distribution"):
        result.index_distribution = l4.index_distribution()
    if system.fault_injector is not None:
        stats = system.fault_injector.stats
        result.faults_injected = stats.faults_injected
        result.ecc_corrected = stats.ecc_corrected
        result.ecc_detected_refetches = stats.ecc_detected_refetches
        result.silent_corruptions = stats.silent_corruptions
    result.manifest = obs.build_manifest(
        workload, config, params, elapsed_s=time.perf_counter() - started
    )
    if tracer.enabled:
        end_cycle = int(max(e for e in end_times if e is not None))
        tracer.span(
            "sim.measure", "sim", reset_cycle,
            max(1, end_cycle - reset_cycle),
            instructions=window_insts,
        )
    if prof.enabled:
        prof.exit(int(window_cycles))  # close the root "sim" frame
    obs.finish_run(run_obs, result.manifest)
    return result


def run_trace(
    trace,
    config: SystemConfig,
    *,
    name: str = "trace",
    warmup_fraction: float = 0.0,
    energy_params: EnergyParams = EnergyParams(),
) -> SimResult:
    """Replay a recorded trace (see :mod:`repro.trace`) on one core.

    ``trace`` is anything iterable of Access records that also provides
    ``line_data(addr)`` for initial memory contents (a
    :class:`~repro.trace.RecordedTrace` does); a plain iterable works too,
    with untouched memory reading as zeros.

    The trace is *streamed*: it is only materialized when a warmup window
    is requested on a trace that does not know its own length (replaying a
    multi-gigabyte recorded trace no longer builds a Python list of it).
    Warmup and measurement windows are emitted as ``sim.warmup`` /
    ``sim.measure`` tracer spans, mirroring :func:`run_workload`.
    """
    line_data = getattr(trace, "line_data", lambda _addr: bytes(64))
    run_obs = obs.begin_run(f"{name}x{config.name}")
    tracer = run_obs.tracer
    prof = run_obs.profiler
    started = time.perf_counter()
    if prof.enabled:
        prof.enter("sim")
    system = MemorySystem(config, line_data, obs=run_obs)
    ipc = config.core.base_ipc
    mlp = config.core.mlp

    accesses = trace
    warmup = 0
    if warmup_fraction > 0.0:
        try:
            total = len(trace)
        except TypeError:
            accesses = list(trace)
            total = len(accesses)
        warmup = int(total * warmup_fraction)
    tracer.set_phase("warmup" if warmup > 0 else "measure")
    now = 0.0
    insts = 0
    warm_time = 0.0
    warm_insts = 0
    reset_cycle = 0
    count = 0
    for access in accesses:
        if count == warmup and warmup > 0:
            warm_time, warm_insts = now, insts
            system.reset_stats()
            reset_cycle = int(now)
            if tracer.enabled:
                tracer.span(
                    "sim.warmup", "sim", 0, max(1, reset_cycle),
                    accesses=warmup,
                )
            tracer.set_phase("measure")
        t = now + access.inst_gap / ipc
        finish = system.handle_access(access, int(t))
        now = t + max(0.0, (finish - t) / mlp)
        insts += access.inst_gap
        count += 1
    if count == 0:
        raise ValueError("trace is empty")
    time_end = now

    cycles = max(1.0, time_end - warm_time)
    window_insts = insts - warm_insts
    l4 = system.l4
    energy = total_energy_nj(
        cycles,
        l4.device.total_accesses,
        l4.device.total_bytes_transferred,
        system.memory.device.total_accesses,
        system.memory.device.total_bytes_transferred,
        energy_params,
    )
    result = SimResult(
        workload=name,
        config_name=config.name,
        cycles=cycles,
        instructions=window_insts,
        per_core_ipc=[window_insts / cycles],
        l3_hit_rate=system.hierarchy.hit_rate,
        l4_hit_rate=l4.hit_rate,
        l4_accesses=l4.device.total_accesses,
        l4_bytes=l4.device.total_bytes_transferred,
        mem_accesses=system.memory.device.total_accesses,
        mem_bytes=system.memory.device.total_bytes_transferred,
        energy_nj=energy,
        effective_capacity=l4.valid_line_count() / l4.config.num_sets,
        mapi_accuracy=system.mapi.accuracy,
        l3_bonus_installs=system.hierarchy.bonus_installs,
        l3_bonus_hits=system.hierarchy.bonus_hits,
    )
    result.manifest = obs.build_manifest(
        name, config, elapsed_s=time.perf_counter() - started
    )
    if tracer.enabled:
        tracer.span(
            "sim.measure", "sim", reset_cycle,
            max(1, int(time_end) - reset_cycle),
            instructions=window_insts,
        )
    if prof.enabled:
        prof.exit(int(cycles))
    obs.finish_run(run_obs, result.manifest)
    return result
