"""Cycle-accounting simulator tying cores, L3, DRAM cache and memory together."""

from repro.sim.engine import SimulationParams, run_trace, run_workload
from repro.sim.metrics import SimResult
from repro.sim.system import MemorySystem

__all__ = [
    "SimulationParams",
    "run_trace",
    "run_workload",
    "SimResult",
    "MemorySystem",
]
