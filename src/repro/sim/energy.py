"""Event-count energy model for the off-chip memory system (Fig 14).

The paper's EDP result is driven by traffic reduction: DICE raises L3 and L4
hit rates, cutting both stacked-DRAM and DDR activity.  We charge per-access
activation energy plus per-byte transfer energy for each pool, and a
background power proportional to runtime.  Constants are representative of
HBM vs off-package DDR (DDR costs more per byte moved, stacked DRAM less);
only *ratios* matter since Fig 14 is normalized to the baseline.
"""

from __future__ import annotations

from dataclasses import dataclass

CPU_GHZ = 3.2
"""Core clock (Table 2); converts cycles to nanoseconds."""


@dataclass(frozen=True)
class EnergyParams:
    """Per-event energies (nJ) and background power (W)."""

    l4_access_nj: float = 1.5  # stacked-DRAM activate/precharge, amortized
    l4_byte_nj: float = 0.035  # ~4.4 pJ/bit on-package transfer
    mem_access_nj: float = 2.5  # DDR activate/precharge
    mem_byte_nj: float = 0.085  # ~10.6 pJ/bit off-package transfer
    background_w: float = 1.2  # refresh + PHY + controller


def total_energy_nj(
    cycles: float,
    l4_accesses: int,
    l4_bytes: int,
    mem_accesses: int,
    mem_bytes: int,
    params: EnergyParams = EnergyParams(),
) -> float:
    """Total off-chip energy for one measurement window."""
    seconds = cycles / (CPU_GHZ * 1e9)
    dynamic = (
        l4_accesses * params.l4_access_nj
        + l4_bytes * params.l4_byte_nj
        + mem_accesses * params.mem_access_nj
        + mem_bytes * params.mem_byte_nj
    )
    background = params.background_w * seconds * 1e9  # W * s -> nJ
    return dynamic + background
