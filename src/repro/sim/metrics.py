"""Result records produced by one simulation run."""

from __future__ import annotations

from dataclasses import dataclass, field
from typing import Dict, List, Optional


@dataclass
class SimResult:
    """Measured outcome of simulating one workload on one configuration.

    All counters cover the post-warmup measurement window.  Speedups are not
    stored here — they are ratios of two results and live in the harness.
    """

    workload: str
    config_name: str
    cycles: float
    instructions: int
    per_core_ipc: List[float]
    l3_hit_rate: float
    l4_hit_rate: float
    l4_accesses: int
    l4_bytes: int
    mem_accesses: int
    mem_bytes: int
    energy_nj: float
    effective_capacity: float  # valid lines / num_sets (1.0 = uncompressed full)
    cip_accuracy: Optional[float] = None
    cip_write_accuracy: Optional[float] = None
    mapi_accuracy: Optional[float] = None
    index_distribution: Optional[tuple] = None  # (invariant, tsi, bai)
    l3_bonus_installs: int = 0
    l3_bonus_hits: int = 0
    # resilience counters (all zero on fault-free runs; like every other
    # counter they cover the post-warmup measurement window — the stats
    # reset at the warmup boundary clears warmup fault exposure too)
    faults_injected: int = 0
    ecc_corrected: int = 0
    ecc_detected_refetches: int = 0
    silent_corruptions: int = 0
    extras: Dict[str, float] = field(default_factory=dict)
    # run provenance (repro.obs.manifest): config digest, seed, git SHA,
    # host, wall clock.  compare=False — two runs of the same simulation
    # are the same *result* even though they are different *executions*.
    manifest: Optional[Dict[str, object]] = field(default=None, compare=False)

    @property
    def ipc(self) -> float:
        """Aggregate instructions-per-cycle across all cores."""
        return self.instructions / self.cycles if self.cycles else 0.0

    @property
    def edp_au(self) -> float:
        """Energy-delay product in arbitrary units (nJ x cycles)."""
        return self.energy_nj * self.cycles

    def weighted_speedup_over(self, baseline: "SimResult") -> float:
        """Per-core weighted speedup (Sec 3.2), normalized to 1.0."""
        if len(self.per_core_ipc) != len(baseline.per_core_ipc):
            raise ValueError("core counts differ between runs")
        pairs = list(zip(self.per_core_ipc, baseline.per_core_ipc))
        return sum(s / b for s, b in pairs if b > 0) / len(pairs)
