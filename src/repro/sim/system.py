"""The full memory system: shared L3, L4 DRAM cache, DDR main memory.

`MemorySystem.handle_access` walks one L3 access through the hierarchy and
returns the cycle at which the demand resolves.  Side traffic — installs,
writebacks, stale-copy invalidations, MAP-I's parallel memory probes, and
explicit prefetches — is charged to the timing devices without blocking the
demand, which is how a real controller overlaps it.
"""

from __future__ import annotations

from typing import Callable, Optional

from repro.cache.hierarchy import OnChipHierarchy
from repro.config import SystemConfig
from repro.core.compressed_cache import CompressedDRAMCache
from repro.core.dice import DICECache
from repro.core.knl import KNLDICECache
from repro.dram.mainmemory import MainMemory
from repro.dramcache.alloy import AlloyCache, L4ReadResult
from repro.dramcache.mapi import MAPIPredictor
from repro.dramcache.scc import SCCDRAMCache
from repro.obs import RunObservability, instrument_method
from repro.resilience.ecc import CORRECTED, DETECTED
from repro.resilience.injector import FaultInjector
from repro.sim.prefetch import prefetch_target
from repro.workloads.base import Access

DataGenerator = Callable[[int], bytes]


def build_l4(config):
    """Instantiate the DRAM-cache design named by a config.

    Accepts either a full :class:`SystemConfig` or a bare
    :class:`~repro.config.DRAMCacheConfig`.
    """
    l4cfg = getattr(config, "l4", config)
    if not l4cfg.compressed:
        return AlloyCache(l4cfg)
    scheme = l4cfg.index_scheme
    if scheme in ("tsi", "nsi", "bai"):
        return CompressedDRAMCache(l4cfg)
    if scheme == "dice":
        if l4cfg.neighbor_tag_visible:
            return DICECache(l4cfg)
        return KNLDICECache(l4cfg)
    if scheme == "scc":
        return SCCDRAMCache(l4cfg)
    if scheme == "lcp":
        from repro.dramcache.lcp import LCPDRAMCache

        return LCPDRAMCache(l4cfg)
    raise ValueError(f"unknown L4 design {scheme!r}")


class MemorySystem:
    """Shared memory system below the cores' private caches."""

    def __init__(
        self,
        config: SystemConfig,
        data_generator: DataGenerator,
        fault_injector: Optional[FaultInjector] = None,
        obs: Optional[RunObservability] = None,
    ) -> None:
        self.config = config
        self.hierarchy = OnChipHierarchy(config.l3)
        self.l4 = build_l4(config)
        self.memory = MainMemory(config.memory, data_generator)
        self.mapi = MAPIPredictor()
        self.fault_injector = fault_injector
        # Observability: the tracer is consulted (guarded, so the disabled
        # singleton is never even called on the hot path) and the registry
        # owns this system's push-style instruments.  Components with their
        # own fast plain-int counters publish through the pull collector.
        self.obs = obs if obs is not None else RunObservability.disabled()
        self.tracer = self.obs.tracer
        self.metrics = self.obs.metrics
        self._demand_reads = self.metrics.counter("sim.demand.reads")
        self._prefetch_issued = self.metrics.counter("sim.prefetch.issued")
        self._wasted_parallel_probes = self.metrics.counter(
            "sim.mapi.wasted_probes"
        )
        self.demand_latency = self.metrics.histogram(
            "sim.demand.latency_cycles"
        )
        self.l4_bandwidth = self.metrics.tracker("sim.l4.bandwidth")
        self.metrics.add_collector(self._collect_metrics)
        if self.tracer.enabled:
            # hand the run's tracer down to the timing devices (instance
            # attributes shadow the class-level NULL_TRACER)
            self.l4.tracer = self.tracer
            self.l4.device.tracer = self.tracer
            self.l4.device.trace_cat = "dram.l4"
            self.memory.device.tracer = self.tracer
            self.memory.device.trace_cat = "dram.mem"
        self.prof = self.obs.profiler
        if self.prof.enabled:
            # Component attribution: wrap the *instances'* hot methods in
            # profiler frames.  Applied only when profiling is enabled, so
            # unprofiled runs keep the original unwrapped bound methods.
            # The compressor instance is shared with the pair-size cache,
            # so one wrap covers both install- and probe-side codec calls.
            prof = self.prof
            instrument_method(self.mapi, "predict_miss", "mapi.predict", prof)
            compressor = getattr(self.l4, "compressor", None)
            if compressor is not None:
                instrument_method(
                    compressor, "compressed_size", "codec.compressed_size",
                    prof,
                )
            cip = getattr(self.l4, "cip", None)
            if cip is not None:
                instrument_method(cip, "predict_bai", "cip.predict", prof)
            instrument_method(
                self.l4, "choose_index", "dice.choose_index", prof
            )
            instrument_method(self.l4.device, "access", "dram.l4.access", prof)
            instrument_method(
                self.memory.device, "access", "dram.mem.access", prof
            )

    # registry-backed counters, exposed as the plain ints tests and the
    # harness have always read
    @property
    def demand_reads(self) -> int:
        return self._demand_reads.value

    @property
    def prefetch_issued(self) -> int:
        return self._prefetch_issued.value

    @property
    def wasted_parallel_probes(self) -> int:
        return self._wasted_parallel_probes.value

    # -- public entry points -------------------------------------------------

    def handle_access(self, access: Access, now: int) -> int:
        """Serve one L3 access; returns the resolve cycle."""
        if access.is_write:
            return self._handle_write(access, now)
        return self._handle_read(access, now)

    # -- write path ------------------------------------------------------------

    def _handle_write(self, access: Access, now: int) -> int:
        """Stores write-allocate into L3; dirtiness drains via evictions."""
        line = access.line_addr
        data = self._store_data(line)
        if self.hierarchy.write(line, data):
            return now + self.config.l3.latency_cycles
        finish = self._miss_fill(access, now)
        self.hierarchy.write(line, data)
        return finish

    def _store_data(self, line_addr: int) -> bytes:
        """New contents for a stored-to line (same data class, new values)."""
        current = self.memory.read_data(line_addr)
        # Flip a value-sized chunk deterministically: preserves the line's
        # compressibility class while changing its bytes.  The low bits
        # cycle mod 4 so repeated stores revisit a small set of variants,
        # keeping the compressor's memo effective.
        mutated = bytearray(current)
        word = int.from_bytes(mutated[0:4], "little")
        word = (word & ~0x3) | ((word + 1) & 0x3)
        mutated[0:4] = word.to_bytes(4, "little")
        return bytes(mutated)

    # -- read path ---------------------------------------------------------------

    def _handle_read(self, access: Access, now: int) -> int:
        data = self.hierarchy.lookup(access.line_addr)
        if data is not None:
            return now + self.config.l3.latency_cycles
        return self._miss_fill(access, now)

    def _miss_fill(self, access: Access, now: int) -> int:
        """L3 miss: consult L4 (and memory), install, maybe prefetch."""
        finish = self._miss_fill_inner(access, now)
        self.demand_latency.record(max(0, finish - now))
        return finish

    def _miss_fill_inner(self, access: Access, now: int) -> int:
        self._demand_reads.inc()
        line = access.line_addr
        t = now + self.config.l3.latency_cycles
        predicted_miss = self.mapi.predict_miss(access.pc)

        prof = self.prof
        if prof.enabled:
            prof.enter("l4.lookup")
            result = self.l4.read(line, t, access.pc)
            prof.exit(max(0, int(result.finish_cycle - t)))
        else:
            result = self.l4.read(line, t, access.pc)
        tracer = self.tracer
        if tracer.enabled:
            # Emitted before fault filtering so the event stream replays to
            # exactly the L4-internal hit/miss accounting.
            tracer.instant(
                "l4.read", "l4", t, sampled=True,
                kind="demand", hit=result.hit, line=line,
            )
            if predicted_miss == result.hit:
                tracer.instant(
                    "mapi.mispredict", "mapi", t, sampled=True,
                    predicted_miss=predicted_miss, hit=result.hit,
                )
        self.l4_bandwidth.record(t, result.accesses * 80)
        if self.fault_injector is not None and result.hit:
            # Narrow resilience hook: on fault-free runs the injector is
            # None and this branch costs one attribute check per read.
            result = self._filter_faulty_read(line, result, t)
        if result.hit:
            self.mapi.update(access.pc, was_miss=False)
            if predicted_miss:
                # MAP-I launched a useless memory read in parallel.
                self.memory.read(line, t)
                self._wasted_parallel_probes.inc()
            self._install_l3(line, result.data, now=result.finish_cycle)
            for extra_addr, extra_data in result.extra_lines:
                self._install_l3_bonus(extra_addr, extra_data)
            finish = result.finish_cycle
        else:
            self.mapi.update(access.pc, was_miss=True)
            mem_arrival = t if predicted_miss else result.finish_cycle
            if prof.enabled:
                prof.enter("dram.mainmemory")
                data, mem_res = self.memory.read(line, mem_arrival)
                prof.exit(max(0, int(mem_res.finish_cycle - mem_arrival)))
            else:
                data, mem_res = self.memory.read(line, mem_arrival)
            self._install_l4(
                line, data, mem_res.finish_cycle, after_demand_read=True
            )
            self._install_l3(line, data, now=mem_res.finish_cycle)
            finish = max(result.finish_cycle, mem_res.finish_cycle)

        self._maybe_prefetch(line, finish)
        return finish

    # -- resilience ------------------------------------------------------------------

    def _filter_faulty_read(
        self, line: int, result: L4ReadResult, now: int
    ) -> L4ReadResult:
        """Apply injected faults + the ECC verdict to one L4 read hit.

        * corrected — single-bit error fixed by SECDED; data passes clean;
        * detected — uncorrectable: the poisoned frame is invalidated (both
          lines, if pair-compressed) and the demand falls through to the
          ordinary miss path, refetching from DDR at its real cost;
        * silent — multi-bit miscorrection (or no ECC): poisoned data is
          written back into the frame and propagates to the L3.
        """
        injector = self.fault_injector
        set_index = (
            result.set_index
            if result.set_index is not None
            else line % self.l4.num_sets
        )
        bit_errors = injector.bit_errors_for_read(set_index, now)
        if bit_errors == 0:
            return result
        if self.tracer.enabled:
            # faults are rare lifecycle events: never sampled out
            self.tracer.instant(
                "resilience.fault", "resilience", now,
                set_index=set_index, bits=bit_errors,
                verdict=injector.verdict(bit_errors),
            )

        # A fault strikes the physical frame.  If the demand line is
        # pair-compressed there, its buddy shares the tag and bases, so the
        # blast radius covers both lines (the DICE-specific hazard).
        pair_buddy = getattr(self.l4, "pair_buddy", None)
        buddy = pair_buddy(line) if pair_buddy is not None else None
        affected = 2 if buddy is not None else 1
        stats = injector.stats
        stats.lines_corrupted += affected
        if buddy is not None:
            stats.pair_blast_events += 1

        verdict = injector.verdict(bit_errors)
        if verdict == CORRECTED:
            stats.ecc_corrected += affected
            return result
        if verdict == DETECTED:
            self.l4.invalidate(line)
            if buddy is not None:
                self.l4.invalidate(buddy)
            stats.ecc_detected_invalidations += affected
            stats.ecc_detected_refetches += 1
            # Miss-shaped result: the caller's miss path charges the DDR
            # refetch and reinstalls the line — graceful degradation.
            return L4ReadResult(
                hit=False,
                data=None,
                finish_cycle=result.finish_cycle,
                accesses=result.accesses,
            )
        # silent
        stats.silent_corruptions += affected
        poison = lambda data: injector.corrupt(data, bit_errors)  # noqa: E731
        corrupted = self.l4.corrupt_stored(line, poison)
        result.data = corrupted if corrupted is not None else poison(result.data)
        if buddy is not None:
            corrupted_buddy = self.l4.corrupt_stored(buddy, poison)
            if corrupted_buddy is not None and result.extra_lines:
                result.extra_lines = [
                    (addr, corrupted_buddy if addr == buddy else data)
                    for addr, data in result.extra_lines
                ]
        return result

    # -- fills, writebacks, prefetch ------------------------------------------------

    def _install_l3(self, line_addr: int, data: bytes, now: int) -> None:
        evicted = self.hierarchy.install(line_addr, data)
        if evicted is not None and evicted.dirty:
            self._writeback_to_l4(evicted.line_addr, evicted.data, now)

    def _install_l3_bonus(self, line_addr: int, data: bytes) -> None:
        evicted = self.hierarchy.install_bonus(line_addr, data)
        if evicted is not None and evicted.dirty:
            self._writeback_to_l4(evicted.line_addr, evicted.data, now=0)

    def _install_l4(
        self, line_addr: int, data: bytes, now: int, *, after_demand_read: bool
    ) -> None:
        prof = self.prof
        if prof.enabled:
            prof.enter("l4.install")
            wres = self.l4.install(
                line_addr,
                data,
                now,
                dirty=not after_demand_read,
                after_demand_read=after_demand_read,
            )
            prof.exit(max(0, int(wres.finish_cycle - now)))
        else:
            wres = self.l4.install(
                line_addr,
                data,
                now,
                dirty=not after_demand_read,
                after_demand_read=after_demand_read,
            )
        for victim_addr, victim_data in wres.writebacks:
            self.memory.write(victim_addr, victim_data, wres.finish_cycle)

    def _writeback_to_l4(self, line_addr: int, data: bytes, now: int) -> None:
        """Dirty L3 victim drains into the (write-allocating) L4."""
        self._install_l4(line_addr, data, now, after_demand_read=False)

    def _maybe_prefetch(self, line_addr: int, now: int) -> None:
        target = prefetch_target(self.config.l3_prefetch, line_addr)
        if target is None or self.hierarchy.l3.contains(target):
            return
        self._prefetch_issued.inc()
        prof = self.prof
        if prof.enabled:
            prof.enter("l4.prefetch_probe")
            result = self.l4.read(target, now, pc=0)
            prof.exit(max(0, int(result.finish_cycle - now)))
        else:
            result = self.l4.read(target, now, pc=0)
        if self.tracer.enabled:
            # prefetch probes hit the same L4 counters as demand reads, so
            # the replayable event stream must cover them too
            self.tracer.instant(
                "l4.read", "l4", now, sampled=True,
                kind="prefetch", hit=result.hit, line=target,
            )
        if result.hit:
            self._install_l3_bonus(target, result.data)
        # prefetch L4 misses are dropped: no memory fetch, bandwidth only

    # -- stats -------------------------------------------------------------------

    def reset_stats(self) -> None:
        """Open the measurement window: zero every counter the run reports.

        Resets in place — components hold references to registry-owned
        instruments, and those references must survive.  The resilience
        counters reset here too, so post-warmup windows never inherit
        warmup fault exposure (the injector's planted stuck sites and
        timeline are state, not accounting, and keep firing).
        """
        self.hierarchy.reset_stats()
        self.l4.reset_stats()
        self.memory.reset_stats()
        if self.fault_injector is not None:
            self.fault_injector.stats.reset()
        self.metrics.reset()

    # -- metrics export -----------------------------------------------------------

    def _collect_metrics(self, registry) -> None:
        """Pull collector: publish component-internal counters into the
        registry at export time (the components keep their fast plain-int
        counters on the hot path)."""
        l4 = self.l4
        registry.counter("sim.l4.read_hits").set(l4.read_hits)
        registry.counter("sim.l4.read_misses").set(l4.read_misses)
        registry.counter("sim.l4.installs").set(l4.installs)
        registry.gauge("sim.l4.hit_rate").set(l4.hit_rate)
        registry.counter("sim.l4.device_accesses").set(
            l4.device.total_accesses
        )
        registry.counter("sim.l4.device_bytes").set(
            l4.device.total_bytes_transferred
        )
        registry.counter("sim.mem.device_accesses").set(
            self.memory.device.total_accesses
        )
        registry.counter("sim.mem.device_bytes").set(
            self.memory.device.total_bytes_transferred
        )
        registry.gauge("sim.l3.hit_rate").set(self.hierarchy.hit_rate)
        registry.counter("sim.l3.bonus_installs").set(
            self.hierarchy.bonus_installs
        )
        registry.counter("sim.l3.bonus_hits").set(self.hierarchy.bonus_hits)
        registry.counter("sim.mapi.predictions").set(self.mapi.predictions)
        registry.counter("sim.mapi.correct").set(self.mapi.correct)
        registry.gauge("sim.mapi.accuracy").set(self.mapi.accuracy)
        cip = getattr(l4, "cip", None)
        if cip is not None:
            registry.counter("sim.cip.lookups").set(cip.lookups)
            registry.counter("sim.cip.correct").set(cip.correct)
            registry.gauge("sim.cip.accuracy").set(cip.accuracy)
        for name in (
            "installs_invariant", "installs_tsi", "installs_bai",
            "second_accesses", "index_switches",
        ):
            value = getattr(l4, name, None)
            if value is not None:
                registry.counter(f"sim.dice.{name}").set(value)
        compressor = getattr(l4, "compressor", None)
        if compressor is not None:
            memo_stats = getattr(compressor, "memo_stats", None)
            if memo_stats is not None:
                for key, value in memo_stats().items():
                    if key == "entries":
                        registry.gauge("codec.memo.entries").set(value)
                    else:
                        registry.counter(f"codec.memo.{key}").set(value)
        pair_sizes = getattr(l4, "pair_sizes", None)
        if pair_sizes is not None:
            for key, value in pair_sizes.stats().items():
                if key == "entries":
                    registry.gauge("codec.pair_memo.entries").set(value)
                else:
                    registry.counter(f"codec.pair_memo.{key}").set(value)
        if self.fault_injector is not None:
            stats = self.fault_injector.stats
            for name in (
                "faults_injected", "lines_corrupted", "ecc_corrected",
                "ecc_detected_refetches", "ecc_detected_invalidations",
                "silent_corruptions", "stuck_sites_planted",
                "pair_blast_events",
            ):
                registry.counter(f"sim.resilience.{name}").set(
                    getattr(stats, name)
                )
