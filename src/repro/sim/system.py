"""The full memory system: shared L3, L4 DRAM cache, DDR main memory.

`MemorySystem.handle_access` walks one L3 access through the hierarchy and
returns the cycle at which the demand resolves.  Side traffic — installs,
writebacks, stale-copy invalidations, MAP-I's parallel memory probes, and
explicit prefetches — is charged to the timing devices without blocking the
demand, which is how a real controller overlaps it.
"""

from __future__ import annotations

from typing import Callable

from repro.cache.hierarchy import OnChipHierarchy
from repro.config import SystemConfig
from repro.core.compressed_cache import CompressedDRAMCache
from repro.core.dice import DICECache
from repro.core.knl import KNLDICECache
from repro.dram.mainmemory import MainMemory
from repro.dramcache.alloy import AlloyCache
from repro.dramcache.mapi import MAPIPredictor
from repro.dramcache.scc import SCCDRAMCache
from repro.sim.prefetch import prefetch_target
from repro.sim.stats import BandwidthTracker, LatencyHistogram
from repro.workloads.base import Access

DataGenerator = Callable[[int], bytes]


def build_l4(config):
    """Instantiate the DRAM-cache design named by a config.

    Accepts either a full :class:`SystemConfig` or a bare
    :class:`~repro.config.DRAMCacheConfig`.
    """
    l4cfg = getattr(config, "l4", config)
    if not l4cfg.compressed:
        return AlloyCache(l4cfg)
    scheme = l4cfg.index_scheme
    if scheme in ("tsi", "nsi", "bai"):
        return CompressedDRAMCache(l4cfg)
    if scheme == "dice":
        if l4cfg.neighbor_tag_visible:
            return DICECache(l4cfg)
        return KNLDICECache(l4cfg)
    if scheme == "scc":
        return SCCDRAMCache(l4cfg)
    if scheme == "lcp":
        from repro.dramcache.lcp import LCPDRAMCache

        return LCPDRAMCache(l4cfg)
    raise ValueError(f"unknown L4 design {scheme!r}")


class MemorySystem:
    """Shared memory system below the cores' private caches."""

    def __init__(
        self, config: SystemConfig, data_generator: DataGenerator
    ) -> None:
        self.config = config
        self.hierarchy = OnChipHierarchy(config.l3)
        self.l4 = build_l4(config)
        self.memory = MainMemory(config.memory, data_generator)
        self.mapi = MAPIPredictor()
        self.demand_reads = 0
        self.prefetch_issued = 0
        self.wasted_parallel_probes = 0
        self.demand_latency = LatencyHistogram()
        self.l4_bandwidth = BandwidthTracker()

    # -- public entry points -------------------------------------------------

    def handle_access(self, access: Access, now: int) -> int:
        """Serve one L3 access; returns the resolve cycle."""
        if access.is_write:
            return self._handle_write(access, now)
        return self._handle_read(access, now)

    # -- write path ------------------------------------------------------------

    def _handle_write(self, access: Access, now: int) -> int:
        """Stores write-allocate into L3; dirtiness drains via evictions."""
        line = access.line_addr
        data = self._store_data(line)
        if self.hierarchy.write(line, data):
            return now + self.config.l3.latency_cycles
        finish = self._miss_fill(access, now)
        self.hierarchy.write(line, data)
        return finish

    def _store_data(self, line_addr: int) -> bytes:
        """New contents for a stored-to line (same data class, new values)."""
        current = self.memory.read_data(line_addr)
        # Flip a value-sized chunk deterministically: preserves the line's
        # compressibility class while changing its bytes.  The low bits
        # cycle mod 4 so repeated stores revisit a small set of variants,
        # keeping the compressor's memo effective.
        mutated = bytearray(current)
        word = int.from_bytes(mutated[0:4], "little")
        word = (word & ~0x3) | ((word + 1) & 0x3)
        mutated[0:4] = word.to_bytes(4, "little")
        return bytes(mutated)

    # -- read path ---------------------------------------------------------------

    def _handle_read(self, access: Access, now: int) -> int:
        data = self.hierarchy.lookup(access.line_addr)
        if data is not None:
            return now + self.config.l3.latency_cycles
        return self._miss_fill(access, now)

    def _miss_fill(self, access: Access, now: int) -> int:
        """L3 miss: consult L4 (and memory), install, maybe prefetch."""
        finish = self._miss_fill_inner(access, now)
        self.demand_latency.record(max(0, finish - now))
        return finish

    def _miss_fill_inner(self, access: Access, now: int) -> int:
        self.demand_reads += 1
        line = access.line_addr
        t = now + self.config.l3.latency_cycles
        predicted_miss = self.mapi.predict_miss(access.pc)

        result = self.l4.read(line, t, access.pc)
        self.l4_bandwidth.record(t, result.accesses * 80)
        if result.hit:
            self.mapi.update(access.pc, was_miss=False)
            if predicted_miss:
                # MAP-I launched a useless memory read in parallel.
                self.memory.read(line, t)
                self.wasted_parallel_probes += 1
            self._install_l3(line, result.data, now=result.finish_cycle)
            for extra_addr, extra_data in result.extra_lines:
                self._install_l3_bonus(extra_addr, extra_data)
            finish = result.finish_cycle
        else:
            self.mapi.update(access.pc, was_miss=True)
            mem_arrival = t if predicted_miss else result.finish_cycle
            data, mem_res = self.memory.read(line, mem_arrival)
            self._install_l4(
                line, data, mem_res.finish_cycle, after_demand_read=True
            )
            self._install_l3(line, data, now=mem_res.finish_cycle)
            finish = max(result.finish_cycle, mem_res.finish_cycle)

        self._maybe_prefetch(line, finish)
        return finish

    # -- fills, writebacks, prefetch ------------------------------------------------

    def _install_l3(self, line_addr: int, data: bytes, now: int) -> None:
        evicted = self.hierarchy.install(line_addr, data)
        if evicted is not None and evicted.dirty:
            self._writeback_to_l4(evicted.line_addr, evicted.data, now)

    def _install_l3_bonus(self, line_addr: int, data: bytes) -> None:
        evicted = self.hierarchy.install_bonus(line_addr, data)
        if evicted is not None and evicted.dirty:
            self._writeback_to_l4(evicted.line_addr, evicted.data, now=0)

    def _install_l4(
        self, line_addr: int, data: bytes, now: int, *, after_demand_read: bool
    ) -> None:
        wres = self.l4.install(
            line_addr,
            data,
            now,
            dirty=not after_demand_read,
            after_demand_read=after_demand_read,
        )
        for victim_addr, victim_data in wres.writebacks:
            self.memory.write(victim_addr, victim_data, wres.finish_cycle)

    def _writeback_to_l4(self, line_addr: int, data: bytes, now: int) -> None:
        """Dirty L3 victim drains into the (write-allocating) L4."""
        self._install_l4(line_addr, data, now, after_demand_read=False)

    def _maybe_prefetch(self, line_addr: int, now: int) -> None:
        target = prefetch_target(self.config.l3_prefetch, line_addr)
        if target is None or self.hierarchy.l3.contains(target):
            return
        self.prefetch_issued += 1
        result = self.l4.read(target, now, pc=0)
        if result.hit:
            self._install_l3_bonus(target, result.data)
        # prefetch L4 misses are dropped: no memory fetch, bandwidth only

    # -- stats -------------------------------------------------------------------

    def reset_stats(self) -> None:
        self.hierarchy.reset_stats()
        self.l4.reset_stats()
        self.memory.reset_stats()
        self.demand_reads = 0
        self.prefetch_issued = 0
        self.wasted_parallel_probes = 0
        self.demand_latency = LatencyHistogram()
        self.l4_bandwidth = BandwidthTracker()
