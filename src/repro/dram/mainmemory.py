"""DDR main-memory frontend: timing device plus functional backing store.

Main memory is the lowest level of the hierarchy; functionally it always
hits.  Data is materialized lazily from the workload's data generator the
first time a line is read, and overwritten copies are kept so that writebacks
round-trip correctly.  Timing goes through a :class:`DRAMDevice` with the
DDR organization (1 channel, 64-bit bus in the paper's Table 2).
"""

from __future__ import annotations

from typing import Callable, Dict, Optional

from repro.config import DRAMOrganization, LINE_SIZE
from repro.dram.device import AccessResult, DRAMDevice

DataGenerator = Callable[[int], bytes]
"""Maps a line address to its initial 64 B contents."""


def _zero_line(_addr: int) -> bytes:
    return bytes(LINE_SIZE)


class MainMemory:
    """Backing store with DDR timing."""

    def __init__(
        self,
        organization: DRAMOrganization,
        data_generator: Optional[DataGenerator] = None,
    ) -> None:
        self.device = DRAMDevice(organization)
        self._generate = data_generator or _zero_line
        # Materialized lines: first touch lazily instantiates the
        # generator's contents; stores overwrite in place.
        self._lines: Dict[int, bytes] = {}
        self.reads = 0
        self.writes = 0

    def read_data(self, line_addr: int) -> bytes:
        """Functional read (no timing)."""
        data = self._lines.get(line_addr)
        if data is None:
            data = self._generate(line_addr)
            self._lines[line_addr] = data
        return data

    def write_data(self, line_addr: int, data: bytes) -> None:
        """Functional write (no timing)."""
        if len(data) != LINE_SIZE:
            raise ValueError("main memory stores whole lines")
        self._lines[line_addr] = data

    def read(self, line_addr: int, arrival: int) -> "tuple[bytes, AccessResult]":
        """Timed read of one line."""
        self.reads += 1
        result = self.device.access(line_addr, arrival, LINE_SIZE)
        return self.read_data(line_addr), result

    def write(self, line_addr: int, data: bytes, arrival: int) -> AccessResult:
        """Timed writeback of one line."""
        self.writes += 1
        self.write_data(line_addr, data)
        return self.device.access(line_addr, arrival, LINE_SIZE)

    def reset_stats(self) -> None:
        self.reads = 0
        self.writes = 0
        self.device.reset()
