"""A whole DRAM device: channels x banks with physical address mapping.

Address mapping interleaves consecutive row-buffer-sized blocks across
channels and banks (row-interleaved within a bank), the common mapping for
both stacked DRAM caches and DDR parts.  For the DRAM cache the caller maps
*set index* -> physical location; for main memory the caller maps line
addresses.
"""

from __future__ import annotations

from typing import List, NamedTuple

from repro.config import DRAMOrganization
from repro.obs.tracer import NULL_TRACER


class AccessResult(NamedTuple):
    """Timing outcome of one device access.

    A NamedTuple: one is allocated per device access on the simulator's
    hottest path, and tuple construction is markedly cheaper than a frozen
    dataclass's ``__init__``/``__setattr__`` round trip.
    """

    finish_cycle: int
    latency: int
    row_hit: bool


class DRAMDevice:
    """Channels + banks + address mapping for one DRAM pool."""

    # replaced (with a per-pool category) by the memory system when tracing
    # is enabled; the class-level null means standalone devices trace nothing
    tracer = NULL_TRACER
    trace_cat = "dram"

    def __init__(self, organization: DRAMOrganization) -> None:
        from repro.dram.channel import Channel

        self.organization = organization
        self.channels: List[Channel] = [
            Channel(organization) for _ in range(organization.channels)
        ]
        self._blocks_per_row = max(1, organization.row_buffer_bytes // 64)
        # block -> (channel, bank, row); the mapping is pure, and the hot
        # loop hits the same set-index blocks over and over
        self._locate_cache: dict = {}

    def locate(self, block: int):
        """Map a 64 B-granularity block number to (channel, bank, row).

        Consecutive blocks stay within one row until it fills, and rows are
        striped across channels then banks, spreading load while preserving
        spatial locality within a row buffer.
        """
        row_seq = block // self._blocks_per_row
        nch = self.organization.channels
        nbk = self.organization.banks_per_channel
        channel = row_seq % nch
        bank = (row_seq // nch) % nbk
        row = row_seq // (nch * nbk)
        return channel, bank, row

    def access(self, block: int, arrival: int, nbytes: int) -> AccessResult:
        """One read or write moving ``nbytes`` for the given block."""
        loc = self._locate_cache.get(block)
        if loc is None:
            loc = self.locate(block)
            if len(self._locate_cache) >= 1 << 20:
                self._locate_cache.clear()
            self._locate_cache[block] = loc
        channel_idx, bank_idx, row = loc
        channel = self.channels[channel_idx]
        bank = channel.banks[bank_idx]
        was_hit = bank.open_row == row
        finish = channel.access(bank_idx, row, arrival, nbytes)
        if self.tracer.enabled:
            # busy interval of this access on its channel/bank, as a span
            self.tracer.span(
                "dram.access", self.trace_cat, arrival,
                max(1, finish - arrival), sampled=True,
                channel=channel_idx, bank=bank_idx, row_hit=was_hit,
                nbytes=nbytes,
            )
        return AccessResult(
            finish_cycle=finish, latency=finish - arrival, row_hit=was_hit
        )

    @property
    def total_bytes_transferred(self) -> int:
        return sum(c.bytes_transferred for c in self.channels)

    @property
    def total_accesses(self) -> int:
        return sum(c.accesses for c in self.channels)

    def reset(self) -> None:
        for channel in self.channels:
            channel.reset()
