"""One DRAM channel: a shared command/data bus in front of a set of banks."""

from __future__ import annotations

from dataclasses import dataclass, field
from typing import List

from repro.config import DRAMOrganization
from repro.dram.bank import Bank


@dataclass
class Channel:
    """A channel owns its banks and serializes data bursts on its bus."""

    organization: DRAMOrganization
    banks: List[Bank] = field(default_factory=list)
    bus_next_free: int = 0
    bytes_transferred: int = 0
    accesses: int = 0
    # nbytes -> bus cycles; requests use a handful of distinct sizes, so
    # this avoids recomputing the ceil-division chain per access
    _burst_cache: dict = field(default_factory=dict, repr=False)

    def __post_init__(self) -> None:
        if not self.banks:
            self.banks = [
                Bank(self.organization.timings)
                for _ in range(self.organization.banks_per_channel)
            ]

    def access(self, bank_index: int, row: int, arrival: int, nbytes: int) -> int:
        """Serve one access; returns the cycle the last data byte arrives."""
        bank = self.banks[bank_index % len(self.banks)]
        col_done = bank.access(row, arrival)
        burst = self._burst_cache.get(nbytes)
        if burst is None:
            burst = self.organization.burst_cycles(nbytes)
            self._burst_cache[nbytes] = burst
        start = max(col_done, self.bus_next_free)
        finish = start + burst
        self.bus_next_free = finish
        # the bank cannot start another column access until its burst drains
        bank.next_free = max(bank.next_free, finish)
        self.bytes_transferred += nbytes
        self.accesses += 1
        return finish

    def reset(self) -> None:
        self.bus_next_free = 0
        self.bytes_transferred = 0
        self.accesses = 0
        for bank in self.banks:
            bank.reset()
