"""One DRAM bank with an open-row buffer and next-free-time scheduling.

The simulator is cycle-accounting rather than cycle-by-cycle: each bank
tracks the cycle at which it next becomes free and which row its row buffer
holds.  An access computes its completion time from the requester's arrival
cycle, the bank's availability, and the row-buffer state (hit, closed, or
conflict).  This O(1)-per-access model reproduces queueing delay and
row-locality effects, which is what the paper's bandwidth results hinge on.
"""

from __future__ import annotations

from dataclasses import dataclass
from typing import Optional

from repro.config import DRAMTimings


REFRESH_INTERVAL = 12480
"""tREFI in CPU cycles: 7.8 us at 1.6 GHz DRAM = 3.9 us x 3.2 GHz core."""

REFRESH_CYCLES = 1120
"""tRFC in CPU cycles (~350 ns): the bank is unavailable while refreshing."""


@dataclass
class Bank:
    """State of one bank: open row and earliest next command cycle.

    ``page_policy`` selects what happens after a column access:

    * ``"open"`` (default) — the row stays open; a subsequent access to the
      same row is a cheap row-buffer hit, a different row pays a conflict;
    * ``"closed"`` — the row auto-precharges, so every access pays
      activation but never a conflict (better for random traffic).

    ``refresh_enabled`` charges periodic tRFC windows: an access landing
    inside a refresh stalls until the refresh completes, and refresh closes
    the row.
    """

    timings: DRAMTimings
    page_policy: str = "open"
    refresh_enabled: bool = False
    open_row: Optional[int] = None
    next_free: int = 0
    row_hits: int = 0
    row_misses: int = 0
    row_conflicts: int = 0
    refresh_stalls: int = 0

    def __post_init__(self) -> None:
        if self.page_policy not in ("open", "closed"):
            raise ValueError(f"unknown page policy {self.page_policy!r}")

    def _refresh_delay(self, start: int) -> int:
        """Cycles until the refresh window containing ``start`` ends."""
        position = start % REFRESH_INTERVAL
        if position < REFRESH_CYCLES:
            self.refresh_stalls += 1
            self.open_row = None  # refresh closes the row
            return REFRESH_CYCLES - position
        return 0

    def access(self, row: int, arrival: int) -> int:
        """Perform an access to ``row`` arriving at cycle ``arrival``.

        Returns the cycle at which data transfer may begin (column access
        done).  Updates row-buffer state and the bank's next-free time.
        """
        t = self.timings
        start = max(arrival, self.next_free)
        if self.refresh_enabled:
            start += self._refresh_delay(start)
        if self.open_row == row:
            ready = start + t.tCAS
            self.row_hits += 1
        elif self.open_row is None:
            ready = start + t.tRCD + t.tCAS
            self.row_misses += 1
        else:
            ready = start + t.tRP + t.tRCD + t.tCAS
            self.row_conflicts += 1
        self.open_row = None if self.page_policy == "closed" else row
        # The bank is busy until the column access completes; tRAS limits
        # back-to-back activates but is folded into the conservative
        # next_free to keep the model O(1).
        self.next_free = ready
        return ready

    def reset(self) -> None:
        self.open_row = None
        self.next_free = 0
        self.row_hits = 0
        self.row_misses = 0
        self.row_conflicts = 0
        self.refresh_stalls = 0
