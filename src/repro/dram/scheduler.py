"""FR-FCFS request scheduling over one channel (USIMM-style queues).

The default timing model (`repro.dram.channel`) is O(1) next-free-time
accounting.  This module provides the higher-fidelity alternative the
paper's simulator uses: bounded read/write queues per channel (Table 2:
96 entries) drained by a First-Ready, First-Come-First-Served scheduler —
row-buffer hits are served before older row misses, reads have priority,
and writes drain in batches when the write queue fills past a high-water
mark.

It is deliberately self-contained (drive it with `enqueue` + `drain`) so it
can be validated independently and used for microarchitectural studies; the
system simulator keeps the O(1) model for speed, and
`tests/test_scheduler.py` cross-checks the two models' bandwidth ceilings
against each other.
"""

from __future__ import annotations

from dataclasses import dataclass, field
from typing import List, Optional, Tuple

from repro.config import DRAMOrganization
from repro.dram.bank import Bank
from repro.obs.tracer import NULL_TRACER


@dataclass
class Request:
    """One queued DRAM request."""

    request_id: int
    bank: int
    row: int
    nbytes: int
    is_write: bool
    arrival: int
    issue_cycle: Optional[int] = None
    finish_cycle: Optional[int] = None


@dataclass
class SchedulerStats:
    served_reads: int = 0
    served_writes: int = 0
    row_hits: int = 0
    write_drains: int = 0
    total_queue_wait: int = 0

    @property
    def row_hit_rate(self) -> float:
        total = self.served_reads + self.served_writes
        return self.row_hits / total if total else 0.0


class FRFCFSChannel:
    """One channel with FR-FCFS scheduling and bounded queues."""

    # assign a run's tracer to see per-request service spans in the trace
    tracer = NULL_TRACER

    def __init__(
        self,
        organization: DRAMOrganization,
        *,
        read_queue_depth: int = 96,
        write_queue_depth: int = 96,
        write_high_water: float = 0.75,
        write_low_water: float = 0.25,
    ) -> None:
        if not 0.0 <= write_low_water < write_high_water <= 1.0:
            raise ValueError("water marks must satisfy 0 <= low < high <= 1")
        self.organization = organization
        self.banks = [
            Bank(organization.timings)
            for _ in range(organization.banks_per_channel)
        ]
        self.read_queue: List[Request] = []
        self.write_queue: List[Request] = []
        self.read_queue_depth = read_queue_depth
        self.write_queue_depth = write_queue_depth
        self._write_high = int(write_queue_depth * write_high_water)
        self._write_low = int(write_queue_depth * write_low_water)
        self._draining_writes = False
        self.bus_next_free = 0
        self.now = 0
        self.stats = SchedulerStats()
        self._next_id = 0

    # -- queue admission ------------------------------------------------------

    def enqueue(
        self, bank: int, row: int, nbytes: int, *, is_write: bool, arrival: int
    ) -> Optional[Request]:
        """Admit a request, or return None when its queue is full
        (back-pressure the caller must model)."""
        queue = self.write_queue if is_write else self.read_queue
        depth = self.write_queue_depth if is_write else self.read_queue_depth
        if len(queue) >= depth:
            return None
        request = Request(
            request_id=self._next_id,
            bank=bank % len(self.banks),
            row=row,
            nbytes=nbytes,
            is_write=is_write,
            arrival=arrival,
        )
        self._next_id += 1
        queue.append(request)
        return request

    # -- scheduling ------------------------------------------------------------

    def _pick(self, queue: List[Request]) -> Optional[Request]:
        """FR-FCFS: oldest row-buffer hit, else oldest request."""
        ready = None
        for request in queue:  # queues are in arrival order
            bank = self.banks[request.bank]
            if bank.open_row == request.row:
                ready = request
                break
        return ready if ready is not None else (queue[0] if queue else None)

    def _select_queue(self) -> Optional[List[Request]]:
        writes_pressing = len(self.write_queue) >= self._write_high
        if writes_pressing:
            self._draining_writes = True
        if self._draining_writes and len(self.write_queue) <= self._write_low:
            self._draining_writes = False
        if self._draining_writes and self.write_queue:
            return self.write_queue
        if self.read_queue:
            return self.read_queue
        if self.write_queue:
            return self.write_queue
        return None

    def step(self) -> Optional[Request]:
        """Issue one request; returns it with timing filled, or None."""
        queue = self._select_queue()
        if queue is None:
            return None
        request = self._pick(queue)
        assert request is not None
        queue.remove(request)
        bank = self.banks[request.bank]
        start = max(self.now, request.arrival)
        was_hit = bank.open_row == request.row
        col_done = bank.access(request.row, start)
        burst = self.organization.burst_cycles(request.nbytes)
        begin = max(col_done, self.bus_next_free)
        finish = begin + burst
        self.bus_next_free = finish
        bank.next_free = max(bank.next_free, finish)
        request.issue_cycle = start
        request.finish_cycle = finish
        self.now = max(self.now, start)
        self.stats.total_queue_wait += max(0, start - request.arrival)
        if was_hit:
            self.stats.row_hits += 1
        if request.is_write:
            self.stats.served_writes += 1
            if self._draining_writes:
                self.stats.write_drains += 1
        else:
            self.stats.served_reads += 1
        if self.tracer.enabled:
            self.tracer.span(
                "dram.request", "dram.sched", request.arrival,
                max(1, finish - request.arrival), sampled=True,
                bank=request.bank, row_hit=was_hit,
                is_write=request.is_write,
            )
        return request

    def drain(self) -> List[Request]:
        """Serve everything queued; returns requests in completion order."""
        served: List[Request] = []
        while self.read_queue or self.write_queue:
            request = self.step()
            if request is None:
                break
            served.append(request)
        return served

    @property
    def occupancy(self) -> Tuple[int, int]:
        return len(self.read_queue), len(self.write_queue)

    def register_metrics(self, registry, **labels) -> None:
        """Publish this channel's counters into a metrics registry (pull
        collector; the scheduler keeps its plain dataclass counters)."""

        def _collect(reg) -> None:
            stats = self.stats
            reg.counter("dram.sched.served_reads", **labels).set(
                stats.served_reads
            )
            reg.counter("dram.sched.served_writes", **labels).set(
                stats.served_writes
            )
            reg.counter("dram.sched.row_hits", **labels).set(stats.row_hits)
            reg.counter("dram.sched.write_drains", **labels).set(
                stats.write_drains
            )
            reg.counter("dram.sched.queue_wait_cycles", **labels).set(
                stats.total_queue_wait
            )
            reg.gauge("dram.sched.row_hit_rate", **labels).set(
                stats.row_hit_rate
            )

        registry.add_collector(_collect)
