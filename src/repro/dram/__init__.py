"""DRAM timing substrate: banks, channels, and whole-device models.

Both DRAM pools in the system — the stacked-DRAM cache and the DDR main
memory — are instances of :class:`repro.dram.device.DRAMDevice`, differing
only in channel count, bus width and (for sensitivity studies) timings.
"""

from repro.dram.bank import Bank
from repro.dram.channel import Channel
from repro.dram.device import AccessResult, DRAMDevice
from repro.dram.mainmemory import MainMemory
from repro.dram.scheduler import FRFCFSChannel, Request, SchedulerStats

__all__ = [
    "Bank",
    "Channel",
    "AccessResult",
    "DRAMDevice",
    "MainMemory",
    "FRFCFSChannel",
    "Request",
    "SchedulerStats",
]
