#!/usr/bin/env python
"""Quickstart: simulate one workload on the baseline and on DICE.

Runs the `soplex` SPEC workload (compressible, reuse-heavy — a DICE
showcase) on the uncompressed Alloy baseline and on DICE, then prints the
headline metrics the paper reports: weighted speedup, hit rates, effective
capacity, and DRAM-cache traffic.

Usage::

    python examples/quickstart.py [workload]
"""

from __future__ import annotations

import sys

from repro import SimulationParams, resolve_config, run_workload


def main() -> None:
    workload = sys.argv[1] if len(sys.argv) > 1 else "soplex"
    params = SimulationParams(accesses_per_core=4000)

    print(f"Simulating {workload!r} on 8 cores (this takes a few seconds)...")
    base = run_workload(workload, resolve_config("base"), params)
    dice = run_workload(workload, resolve_config("dice"), params)

    speedup = dice.weighted_speedup_over(base)
    print()
    print(f"{'metric':28s} {'baseline':>12s} {'DICE':>12s}")
    print("-" * 56)
    print(f"{'weighted speedup':28s} {1.0:12.3f} {speedup:12.3f}")
    print(f"{'L3 hit rate':28s} {base.l3_hit_rate:12.3f} {dice.l3_hit_rate:12.3f}")
    print(f"{'L4 (DRAM cache) hit rate':28s} {base.l4_hit_rate:12.3f} {dice.l4_hit_rate:12.3f}")
    print(
        f"{'effective capacity (x)':28s} "
        f"{base.effective_capacity:12.2f} {dice.effective_capacity:12.2f}"
    )
    print(f"{'DRAM-cache accesses':28s} {base.l4_accesses:12d} {dice.l4_accesses:12d}")
    print(f"{'main-memory accesses':28s} {base.mem_accesses:12d} {dice.mem_accesses:12d}")
    print(
        f"{'off-chip energy (norm.)':28s} {1.0:12.3f} "
        f"{dice.energy_nj / base.energy_nj:12.3f}"
    )
    if dice.cip_accuracy is not None:
        print(f"\nCache Index Predictor accuracy: {100 * dice.cip_accuracy:.1f}%")
    if dice.index_distribution is not None:
        inv, tsi, bai = dice.index_distribution
        print(
            f"Install index distribution: {100 * inv:.0f}% invariant, "
            f"{100 * tsi:.0f}% TSI, {100 * bai:.0f}% BAI"
        )


if __name__ == "__main__":
    main()
