#!/usr/bin/env python
"""Compression explorer: poke at FPC, BDI, and pair compression directly.

Shows how the library's compression layer behaves on representative 64 B
lines — the same mechanics that decide DICE's 36 B insertion threshold:
a base4-delta2 line compresses singly to 36 B but pairs (with a shared
base and tag) into 68 B, exactly one 72 B TAD.

Usage::

    python examples/compression_explorer.py
"""

from __future__ import annotations

import struct

from repro.compression import (
    BDICompressor,
    FPCCompressor,
    HybridCompressor,
    ZCACompressor,
    pair_compressed_size,
)

SAMPLES = {
    "all zeros": bytes(64),
    "small ints (FPC se8)": struct.pack("<16i", *([5, -3, 90, -77] * 4)),
    "pointer array (BDI b8d1)": struct.pack(
        "<8Q", *(0x7FFF_1234_5000 + 8 * i for i in range(8))
    ),
    "floats-ish spread (BDI b4d2)": struct.pack(
        "<16I", *(0x2000_0000 + 1500 * i + 7 for i in range(16))
    ),
    "text-like": (b"The quick brown fox jumps over a lazy dog.!!" + bytes(20)),
    "random": bytes(
        (i * 197 + 91) % 256 ^ (i * i) % 251 for i in range(64)
    ),
}


def main() -> None:
    algos = [ZCACompressor(), FPCCompressor(), BDICompressor()]
    hybrid = HybridCompressor()

    header = f"{'line':30s}" + "".join(f"{a.name:>8s}" for a in algos) + f"{'hybrid':>8s}"
    print(header)
    print("-" * len(header))
    for name, data in SAMPLES.items():
        sizes = [a.compress(data).size for a in algos]
        best = hybrid.compress(data)
        cells = "".join(f"{s:8d}" for s in sizes)
        print(f"{name:30s}{cells}{best.size:8d}  ({best.algorithm})")
        assert hybrid.decompress(best) == data  # round-trip, always

    print("\nPair compression (the DICE threshold story):")
    a = struct.pack("<16I", *(0x2000_0000 + 1500 * i + 3 for i in range(16)))
    b = struct.pack("<16I", *(0x2000_0000 + 1500 * i + 11 for i in range(16)))
    size_a = hybrid.compressed_size(a)
    size_b = hybrid.compressed_size(b)
    pair, shared = pair_compressed_size(hybrid, a, b)
    print(f"  line A alone: {size_a} B, line B alone: {size_b} B")
    print(f"  pair with shared BDI base: {pair} B (sharing={shared})")
    print(f"  fits one 72 B TAD with a 4 B shared tag: {4 + pair <= 72}")


if __name__ == "__main__":
    main()
