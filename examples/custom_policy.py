#!/usr/bin/env python
"""Extending the library: a custom insertion policy and predictor.

The DICE controller's decision points are ordinary methods, so research
variants are a subclass away.  This example builds two variants the paper's
Sec 5 invites:

* ``PairAwareDICE`` — instead of thresholding the single line's size, it
  compresses the line *together with its resident neighbor* and installs at
  BAI only when the pair actually fits a TAD (an oracle-ish upper bound on
  the 36 B heuristic);
* a threshold sweep, reproducing Table 4's conclusion in miniature.

Usage::

    python examples/custom_policy.py
"""

from __future__ import annotations

from typing import Tuple

from repro import SimulationParams, resolve_config, run_workload
from repro.config import SystemConfig
from repro.core.dice import DICECache
from repro.sim.system import MemorySystem


class PairAwareDICE(DICECache):
    """Install at BAI only if the line pairs with its resident neighbor.

    Falls back to the 36 B threshold when the neighbor is absent (nothing
    to pair-check against yet).
    """

    def choose_index(self, compressed_size: int, line_addr: int) -> Tuple[int, bool]:
        tsi_set, bai_set = self.locations(line_addr)
        if tsi_set == bai_set:
            return tsi_set, False
        bai_cset = self._sets.get(bai_set)
        buddy = bai_cset.get(line_addr ^ 1) if bai_cset is not None else None
        if buddy is not None:
            # Exact check: does the pair co-compress into one TAD?
            fits = compressed_size + buddy.size <= 68 or (
                self.pair_sizes.size(buddy.data, buddy.data) <= 68
            )
            return (bai_set, True) if fits else (tsi_set, False)
        return super().choose_index(compressed_size, line_addr)


def run_variant(workload: str, l4_factory, params) -> float:
    """Weighted speedup of a custom L4 class over the uncompressed base."""
    base_cfg = resolve_config("base")
    dice_cfg = resolve_config("dice")
    base = run_workload(workload, base_cfg, params)

    # Swap the L4 class by monkey-wiring the system builder.
    import repro.sim.system as system_mod

    original = system_mod.build_l4

    def patched(config):
        l4cfg = getattr(config, "l4", config)
        if l4cfg.compressed and l4cfg.index_scheme == "dice":
            return l4_factory(l4cfg)
        return original(config)

    system_mod.build_l4 = patched
    try:
        variant = run_workload(workload, dice_cfg, params)
    finally:
        system_mod.build_l4 = original
    return variant.weighted_speedup_over(base)


def main() -> None:
    params = SimulationParams(accesses_per_core=2500)
    workload = "soplex"

    print(f"workload: {workload}\n")
    stock = run_variant(workload, DICECache, params)
    pair_aware = run_variant(workload, PairAwareDICE, params)
    print(f"stock DICE (36 B threshold) speedup: {stock:.3f}")
    print(f"pair-aware DICE speedup:             {pair_aware:.3f}")

    print("\nthreshold sweep (Table 4 in miniature):")
    base_cfg = resolve_config("base")
    base = run_workload(workload, base_cfg, params)
    for threshold in (16, 32, 36, 40, 64):
        cfg = resolve_config("dice").with_l4(dice_threshold=threshold)
        result = run_workload(workload, cfg, params)
        s = result.weighted_speedup_over(base)
        print(f"  threshold {threshold:2d} B -> speedup {s:.3f}")
    print(
        "\n(0 B degenerates to pure TSI, 64 B to pure BAI; "
        "the paper finds 36 B optimal.)"
    )


if __name__ == "__main__":
    main()
