#!/usr/bin/env python
"""Record a trace once, replay it against every cache design.

Freezing a trace removes generator noise from design comparisons: every
design sees exactly the same access sequence and the same line contents.
The trace is also written to disk in the library's binary format and read
back, demonstrating the interchange path for real application traces.

Usage::

    python examples/trace_replay.py [workload] [accesses]
"""

from __future__ import annotations

import sys
import tempfile
from pathlib import Path

from repro import resolve_config
from repro.sim.engine import run_trace
from repro.trace import capture_trace, read_trace, trace_info, write_trace
from repro.workloads.base import TraceGenerator
from repro.workloads.registry import get_profile

DESIGNS = ["base", "tsi", "bai", "dice", "scc"]


def main() -> None:
    workload = sys.argv[1] if len(sys.argv) > 1 else "omnetpp"
    count = int(sys.argv[2]) if len(sys.argv) > 2 else 3000

    generator = TraceGenerator(get_profile(workload), scale=4096, seed=42)
    trace = capture_trace(generator, count)
    print(
        f"captured {len(trace)} accesses of {workload!r}: "
        f"{trace.distinct_lines()} distinct lines, "
        f"{100 * trace.write_fraction():.0f}% writes"
    )

    with tempfile.TemporaryDirectory() as tmp:
        path = Path(tmp) / f"{workload}.trc"
        write_trace(path, trace)
        info = trace_info(path)
        replayed = list(read_trace(path))
        assert replayed == trace.accesses
        print(
            f"trace file round-trip OK: {info['count']} records x "
            f"{info['record_bytes']} B = {path.stat().st_size} bytes\n"
        )

    print(f"{'design':8s} {'IPC':>8s} {'L4 hit':>8s} {'L4 acc':>8s} {'mem acc':>8s}")
    print("-" * 46)
    baseline_ipc = None
    for design in DESIGNS:
        result = run_trace(trace, resolve_config(design), name=workload)
        if baseline_ipc is None:
            baseline_ipc = result.ipc
        print(
            f"{design:8s} {result.ipc / baseline_ipc:8.3f} "
            f"{result.l4_hit_rate:8.3f} {result.l4_accesses:8d} "
            f"{result.mem_accesses:8d}"
        )
    print("\n(IPC is normalized to the uncompressed Alloy baseline.)")


if __name__ == "__main__":
    main()
