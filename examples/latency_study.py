#!/usr/bin/env python
"""Latency anatomy: where DICE's cycles go.

Runs one workload on the baseline and on DICE, then prints the demand-miss
latency distribution and the DRAM-cache bandwidth profile — the two
instruments that explain *why* a design wins: DICE shifts latency mass out
of the queueing tail by cutting DRAM-cache traffic.

Usage::

    python examples/latency_study.py [workload] [accesses]
"""

from __future__ import annotations

import sys

from repro import resolve_config
from repro.sim.stats import ascii_bar_chart
from repro.sim.system import MemorySystem
from repro.trace import capture_trace
from repro.workloads.base import TraceGenerator
from repro.workloads.registry import get_profile


def drive(trace, config):
    """Replay a trace through a MemorySystem, keeping the instruments."""
    system = MemorySystem(config, trace.line_data)
    now = 0.0
    for access in trace:
        t = now + access.inst_gap / config.core.base_ipc
        finish = system.handle_access(access, int(t))
        now = t + max(0.0, (finish - t) / config.core.mlp)
    return system


def main() -> None:
    workload = sys.argv[1] if len(sys.argv) > 1 else "soplex"
    count = int(sys.argv[2]) if len(sys.argv) > 2 else 4000

    generator = TraceGenerator(get_profile(workload), scale=4096, seed=9)
    trace = capture_trace(generator, count)
    print(f"workload {workload!r}, {count} accesses\n")

    for name in ("base", "dice"):
        system = drive(trace, resolve_config(name))
        hist = system.demand_latency
        print(f"=== {name}: demand-miss latency (cycles) ===")
        print(
            ascii_bar_chart(
                [(label, frac) for label, _count, frac in hist.rows()],
                width=36,
            )
        )
        print(
            f"mean {hist.mean:.0f}  p50 {hist.percentile(50)}  "
            f"p90 {hist.percentile(90)}  p99 {hist.percentile(99)}  "
            f"max {hist.max}"
        )
        print(
            f"L4 demand bandwidth: mean "
            f"{system.l4_bandwidth.mean_bytes_per_cycle:.2f} B/cyc, peak "
            f"{system.l4_bandwidth.peak_bytes_per_cycle:.2f} B/cyc"
        )
        print(
            f"L4 hit rate {system.l4.hit_rate:.3f}, "
            f"L3 bonus installs {system.hierarchy.bonus_installs}\n"
        )


if __name__ == "__main__":
    main()
