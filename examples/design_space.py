#!/usr/bin/env python
"""Design-space exploration: the full DICE threshold curve.

Table 4 samples three thresholds; this example sweeps the whole curve for
one workload, from the pure-TSI endpoint (threshold 0) to the pure-BAI
endpoint (threshold 64), and renders it as an ASCII chart.  The shape is
the paper's argument in one picture: the curve rises while the threshold
admits pair-compressible lines and falls once it admits lines whose pairs
no longer fit a TAD.

Usage::

    python examples/design_space.py [workload] [accesses]
"""

from __future__ import annotations

import sys

from repro.harness.sweeps import threshold_sweep
from repro.sim.engine import SimulationParams
from repro.sim.stats import ascii_bar_chart


def main() -> None:
    workload = sys.argv[1] if len(sys.argv) > 1 else "soplex"
    accesses = int(sys.argv[2]) if len(sys.argv) > 2 else 3000
    params = SimulationParams(accesses_per_core=accesses)

    print(f"DICE insertion-threshold sweep on {workload!r} ...\n")
    curve = threshold_sweep(workload, params=params)
    rows = [(f"{t:2d} B", speedup) for t, speedup in curve]
    print(ascii_bar_chart(rows, width=40))
    best_threshold, best = max(curve, key=lambda point: point[1])
    print(
        f"\nbest threshold: {best_threshold} B (speedup {best:.3f}); "
        f"endpoints: TSI {curve[0][1]:.3f}, BAI {curve[-1][1]:.3f}"
    )
    print("(the paper finds 36 B optimal on average — Table 4)")


if __name__ == "__main__":
    main()
