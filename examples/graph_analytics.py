#!/usr/bin/env python
"""Graph-analytics scenario: why DICE shines on GAP-style workloads.

Graph kernels (PageRank, connected components, betweenness centrality on
twitter/web graphs) combine enormous footprints, very high miss rates, and
highly compressible data — CSR offset/edge arrays are narrow integers.  The
paper's GAP group gets +48.9% from DICE and ~5x effective capacity.

This example sweeps the GAP workloads across the four cache designs and
prints the per-workload speedups plus the capacity story.

Usage::

    python examples/graph_analytics.py [accesses_per_core]
"""

from __future__ import annotations

import sys

from repro import SimulationParams, resolve_config, run_workload
from repro.harness.report import format_table, geomean
from repro.workloads.registry import GAP_WORKLOADS

DESIGNS = ["tsi", "bai", "dice"]


def main() -> None:
    accesses = int(sys.argv[1]) if len(sys.argv) > 1 else 3000
    params = SimulationParams(accesses_per_core=accesses)

    rows = []
    speedups = {d: [] for d in DESIGNS}
    for workload in GAP_WORKLOADS:
        print(f"simulating {workload} ...")
        base = run_workload(workload, resolve_config("base"), params)
        row = [workload]
        capacity = None
        for design in DESIGNS:
            result = run_workload(workload, resolve_config(design), params)
            s = result.weighted_speedup_over(base)
            speedups[design].append(s)
            row.append(s)
            if design == "dice":
                capacity = result.effective_capacity / max(
                    1e-9, base.effective_capacity
                )
        row.append(capacity)
        rows.append(row)

    print()
    print(
        format_table(
            ["workload", "tsi", "bai", "dice", "dice capacity (x)"],
            rows,
            title="GAP suite: speedup over uncompressed Alloy cache",
        )
    )
    print()
    for design in DESIGNS:
        print(f"  {design:6s} geomean speedup: {geomean(speedups[design]):.3f}")
    print(
        "\nPaper reference: GAP group TSI ~ +? (capacity only), DICE +48.9%, "
        "effective capacity ~5x (Tables 4 and 5)."
    )


if __name__ == "__main__":
    main()
