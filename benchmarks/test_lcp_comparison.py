"""Extension bench: LCP-style fixed-target compression vs DICE.

Not a paper figure, but a direct measurement of the Sec 2.2 / 7.2 argument
DICE is built on: main-memory-style compression gets bandwidth benefits for
lines that meet its fixed target, but pays a serialized second access for
every exception line, and the paper argues that costly handling of
incompressible data wipes out the benefit.  DICE keeps the upside while
falling back to TSI instead of an exception region.
"""

from conftest import run_once

from repro.harness.experiments import _speedup_experiment


def test_lcp_vs_dice(benchmark, sim_params, show):
    headers, rows, summary = run_once(
        benchmark,
        lambda: _speedup_experiment(["lcp", "dice"], params=sim_params),
    )
    show("Extension: LCP-style fixed-target compression vs DICE", headers, rows, summary)
    by_name = {row[0]: row[1:] for row in rows}
    # On incompressible workloads LCP's exception path must hurt while
    # DICE's TSI fallback holds the line.
    for wl in ("libq", "lbm"):
        lcp, dice = by_name[wl]
        assert dice > lcp, f"{wl}: DICE {dice:.3f} vs LCP {lcp:.3f}"
    # Across the suite, dynamic indexing beats the fixed target.
    assert summary["dice/ALL26"] > summary["lcp/ALL26"]
