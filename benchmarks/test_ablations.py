"""Ablations beyond the paper's tables (DESIGN.md Sec 6).

* CIP off (probe TSI first, always pay the second access when wrong) vs
  the LTT predictor vs an oracle — quantifies what index prediction buys.
* Tag sharing off — quantifies what pair compression with shared tags buys.
* NSI — the naive spatial indexing the paper rejects in Sec 4.5.
"""

from conftest import run_once

from repro.harness.experiments import GROUPS, _speedup_experiment


def test_ablation_cip_modes(benchmark, sim_params, show):
    headers, rows, summary = run_once(
        benchmark,
        lambda: _speedup_experiment(
            ["dice-cip-none", "dice", "dice-cip-oracle"], params=sim_params
        ),
    )
    show("Ablation: CIP off / LTT / oracle", headers, rows, summary)
    none = summary["dice-cip-none/ALL26"]
    ltt = summary["dice/ALL26"]
    oracle = summary["dice-cip-oracle/ALL26"]
    # The LTT must recover most of the oracle's benefit over no predictor.
    assert oracle >= ltt - 0.02
    assert ltt >= none - 0.02


def test_ablation_tag_sharing(benchmark, sim_params, show):
    headers, rows, summary = run_once(
        benchmark,
        lambda: _speedup_experiment(["dice-noshare", "dice"], params=sim_params),
    )
    show("Ablation: tag sharing off vs on", headers, rows, summary)
    # Shared tags/bases let pairs fit in 72 B; without them DICE loses part
    # of its packing (never gains).
    assert summary["dice/ALL26"] >= summary["dice-noshare/ALL26"] - 0.02


def test_ablation_nsi(benchmark, sim_params, show):
    headers, rows, summary = run_once(
        benchmark,
        lambda: _speedup_experiment(["nsi", "bai"], params=sim_params),
    )
    show("Ablation: NSI vs BAI static indexing", headers, rows, summary)
    # Both co-locate pairs; BAI's value over NSI is cheap *dynamic switching*,
    # so as static schemes they land in the same band.
    assert abs(summary["nsi/ALL26"] - summary["bai/ALL26"]) < 0.15
