"""Table 5: effective DRAM-cache capacity under TSI / BAI / DICE.

Paper: TSI 1.24x, BAI 1.69x, DICE 1.62x on average, with GAP reaching
2.0x / 5.6x / 5.1x — BAI and DICE pair-compress same-page lines (similar
compressibility, shared tags/bases), so they pack more than TSI.
"""

from conftest import run_once

from repro.harness.experiments import table5_capacity

PAPER = {
    "tsi/ALL26": "~1.24x",
    "bai/ALL26": "~1.69x",
    "dice/ALL26": "~1.62x",
    "tsi/GAP": "~2.0x",
    "bai/GAP": "~5.6x",
    "dice/GAP": "~5.1x",
}


def test_table5_capacity(benchmark, sim_params, show):
    headers, rows, summary = run_once(
        benchmark, lambda: table5_capacity(sim_params)
    )
    show("Table 5: effective capacity vs uncompressed", headers, rows, summary, PAPER)
    # Compression must grow effective capacity on average.
    assert summary["tsi/ALL26"] > 1.0
    assert summary["dice/ALL26"] > 1.0
    # GAP packs far more than SPEC (small graph values, many lines per set).
    assert summary["dice/GAP"] > summary["dice/SPEC RATE"]
    # All compressed designs reach substantial GAP capacity; DICE tracks
    # the static schemes within a few percent (in our substrate TSI also
    # pair-packs same-region lines, so the paper's TSI-vs-BAI capacity gap
    # narrows — the *bandwidth* gap, Fig 10, is where they differ).
    assert summary["dice/GAP"] > 1.5
    assert summary["dice/GAP"] > summary["tsi/GAP"] - 0.10
