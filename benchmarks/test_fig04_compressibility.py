"""Fig 4: fraction of compressible lines per workload.

The paper measures lines installed into the DRAM cache: how many compress
to <=32 B, <=36 B, and how often two adjacent lines co-compress to <=68 B
(one 72 B TAD).  Paper average: ~52% of adjacent pairs fit in 68 B.
"""

from conftest import run_once

from repro.harness.experiments import fig04_compressibility

PAPER = {"double<=68": "~52%"}


def test_fig04_compressibility(benchmark, show):
    headers, rows, summary = run_once(benchmark, fig04_compressibility)
    show("Fig 4: compressibility of installed lines (%)", headers, rows, summary, PAPER)
    by_name = {row[0]: row for row in rows}
    # Shape: the compressible standouts must beat the incompressible ones.
    for compressible in ("soplex", "gcc", "astar"):
        for incompressible in ("lbm", "libq", "Gems"):
            assert by_name[compressible][3] > by_name[incompressible][3]
    # Average pair-compressibility in a sane band around the paper's 52%.
    assert 25.0 <= summary["double<=68"] <= 80.0
    # <=36 is a superset of <=32 by construction.
    for row in rows:
        assert row[2] >= row[1]
