"""Fig 1(f) / Sec 2.4: potential speedup from doubling the DRAM cache's
capacity, bandwidth, or both.

Paper: 2x capacity ~ +10%, 2x both ~ +22% on average — the gap between the
two is the bandwidth headroom DICE targets.
"""

from conftest import run_once

from repro.harness.experiments import fig01_potential

PAPER = {
    "2xcap/ALL26": "~1.10",
    "2xcap2xbw/ALL26": "~1.22",
}


def test_fig01_potential(benchmark, sim_params, show):
    headers, rows, summary = run_once(
        benchmark, lambda: fig01_potential(sim_params)
    )
    show("Fig 1(f): potential from doubling cache resources", headers, rows, summary, PAPER)
    # Shape: doubling both must beat doubling capacity alone on average.
    assert summary["2xcap2xbw/ALL26"] > summary["2xcap/ALL26"]
    assert summary["2xcap2xbw/ALL26"] > 1.0
