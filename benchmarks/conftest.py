"""Shared fixtures for the per-figure/table benchmark harness.

Every benchmark regenerates one paper figure or table.  Simulation results
are cached (in-process and on disk), so the expensive simulations run once
per machine; re-running the bench suite replays tables from the cache.

Cold-cache runs fan out automatically: a session-scoped fixture plans the
simulations the *collected* benchmarks will need (via each experiment's
``.plan`` declaration) and runs them on the multiprocess scheduler before
the first benchmark executes, so the benchmarks themselves replay from
cache.  Deterministic simulations make the parallel warm-up invisible in
the numbers.

Environment knobs:

* ``REPRO_SCALE``    — capacity scale factor (default 4096; see DESIGN.md).
* ``REPRO_ACCESSES`` — L3 accesses simulated per core (default 6000).
* ``REPRO_DISK_CACHE=0`` — disable the on-disk result cache.
* ``REPRO_JOBS``     — parallel warm-up worker processes (default: CPU
  count; ``1`` disables the pool and restores fully serial behaviour).
* ``REPRO_FIDELITY_OUT`` — write the fidelity scoreboard of the collected
  experiments (as a ``FIDELITY_baseline.json``-shaped document) to this
  path when the session finishes.
"""

from __future__ import annotations

import os
import sys

import pytest

from repro.harness.report import format_table
from repro.harness.runner import DEFAULT_ACCESSES
from repro.sim.engine import SimulationParams

# benchmark module -> experiment key in repro.harness.experiments.EXPERIMENTS
# (modules not listed here — ablations, comparisons — simply run serially).
_MODULE_EXPERIMENTS = {
    "test_fig01_potential": "fig1",
    "test_fig04_compressibility": "fig4",
    "test_fig07_tsi_bai": "fig7",
    "test_fig10_dice": "fig10",
    "test_fig11_index_distribution": "fig11",
    "test_fig12_knl": "fig12",
    "test_fig13_nonintensive": "fig13",
    "test_fig14_energy": "fig14",
    "test_fig15_scc": "fig15",
    "test_table4_threshold": "table4",
    "test_table5_capacity": "table5",
    "test_table6_l3_hitrate": "table6",
    "test_table7_prefetch": "table7",
    "test_table8_sensitivity": "table8",
    "test_sec53_cip_accuracy": "cip",
}


@pytest.fixture(scope="session")
def sim_params() -> SimulationParams:
    """Run-length parameters shared by every benchmark."""
    return SimulationParams(accesses_per_core=DEFAULT_ACCESSES)


@pytest.fixture(scope="session", autouse=True)
def parallel_warmup(request, sim_params):
    """Pre-simulate everything the collected benchmarks need, in parallel.

    Only the experiments whose benchmark modules were actually collected
    are planned, so ``pytest benchmarks/test_fig10_dice.py`` warms only
    Fig 10's jobs.  Failures are reported but not fatal here — the
    affected benchmark will re-attempt (and surface the error) serially.
    """
    from repro.exec import resolve_jobs

    jobs = resolve_jobs(None)
    if jobs <= 1:
        return
    modules = {
        getattr(getattr(item, "module", None), "__name__", "")
        for item in request.session.items
    }
    keys = sorted(
        {_MODULE_EXPERIMENTS[name] for name in modules if name in _MODULE_EXPERIMENTS}
    )
    if not keys:
        return
    from repro.harness.campaign import prefetch_experiments

    _outcomes, failures = prefetch_experiments(keys, sim_params, jobs=jobs)
    for outcome in failures:
        print(
            f"warmup: {outcome.job.describe()} failed ({outcome.error}); "
            f"its benchmark will retry serially",
            file=sys.stderr,
        )


@pytest.fixture(scope="session", autouse=True)
def fidelity_export(request, sim_params):
    """After the session, export the collected experiments' scoreboard.

    Gated on ``REPRO_FIDELITY_OUT`` so ordinary benchmark runs pay
    nothing.  Every simulation is already cached by the time the session
    ends, so scoring replays from the cache.
    """
    yield
    out = os.environ.get("REPRO_FIDELITY_OUT")
    if not out:
        return
    modules = {
        getattr(getattr(item, "module", None), "__name__", "")
        for item in request.session.items
    }
    keys = sorted(
        {_MODULE_EXPERIMENTS[m] for m in modules if m in _MODULE_EXPERIMENTS}
    )
    if not keys:
        return
    from repro.obs import fidelity

    scoreboard = fidelity.build_scoreboard(
        fidelity.collect_summaries(sim_params, keys)
    )
    path = fidelity.write_baseline(
        out, scoreboard, fidelity.params_context(sim_params)
    )
    print(f"\nfidelity scoreboard written to {path} "
          f"({len(scoreboard)} experiments)", file=sys.stderr)


@pytest.fixture
def show():
    """Print an experiment's table plus group summary under -s/-rA."""

    def _show(title, headers, rows, summary, paper=None):
        print()
        print(format_table(headers, rows, title=title))
        print()
        for key, value in summary.items():
            line = f"  {key:28s} {value:8.3f}"
            if paper and key in paper:
                line += f"   (paper: {paper[key]})"
            print(line)

    return _show


def run_once(benchmark, fn):
    """Run an experiment exactly once under pytest-benchmark timing.

    The experiments are deterministic, minutes-long simulations; repeating
    them for statistical timing would be waste, so a single round is used.
    """
    return benchmark.pedantic(fn, rounds=1, iterations=1)
