"""Shared fixtures for the per-figure/table benchmark harness.

Every benchmark regenerates one paper figure or table.  Simulation results
are cached (in-process and on disk), so the expensive simulations run once
per machine; re-running the bench suite replays tables from the cache.

Environment knobs:

* ``REPRO_SCALE``    — capacity scale factor (default 4096; see DESIGN.md).
* ``REPRO_ACCESSES`` — L3 accesses simulated per core (default 6000).
* ``REPRO_DISK_CACHE=0`` — disable the on-disk result cache.
"""

from __future__ import annotations

import pytest

from repro.harness.report import format_table
from repro.harness.runner import DEFAULT_ACCESSES
from repro.sim.engine import SimulationParams


@pytest.fixture(scope="session")
def sim_params() -> SimulationParams:
    """Run-length parameters shared by every benchmark."""
    return SimulationParams(accesses_per_core=DEFAULT_ACCESSES)


@pytest.fixture
def show():
    """Print an experiment's table plus group summary under -s/-rA."""

    def _show(title, headers, rows, summary, paper=None):
        print()
        print(format_table(headers, rows, title=title))
        print()
        for key, value in summary.items():
            line = f"  {key:28s} {value:8.3f}"
            if paper and key in paper:
                line += f"   (paper: {paper[key]})"
            print(line)

    return _show


def run_once(benchmark, fn):
    """Run an experiment exactly once under pytest-benchmark timing.

    The experiments are deterministic, minutes-long simulations; repeating
    them for statistical timing would be waste, so a single round is used.
    """
    return benchmark.pedantic(fn, rounds=1, iterations=1)
