"""Fig 12: DICE on a Knights-Landing-style cache (tags in ECC, no neighbor
tag streamed).

Paper: +17.5% average — most of the +19.0% of DICE on Alloy survives,
because the extra second probes on misses usually hit an open row.
"""

from conftest import run_once

from repro.harness.experiments import fig12_knl

PAPER = {
    "dice-knl/ALL26": "~1.175",
    "dice/ALL26": "~1.19",
}


def test_fig12_knl(benchmark, sim_params, show):
    headers, rows, summary = run_once(benchmark, lambda: fig12_knl(sim_params))
    show("Fig 12: DICE on a KNL-style DRAM cache", headers, rows, summary, PAPER)
    knl = summary["dice-knl/ALL26"]
    alloy = summary["dice/ALL26"]
    # KNL keeps most of the Alloy-based benefit.
    assert knl > 1.0
    assert knl > 1.0 + 0.5 * (alloy - 1.0), (
        f"KNL variant lost too much of DICE's gain: {knl:.3f} vs {alloy:.3f}"
    )
