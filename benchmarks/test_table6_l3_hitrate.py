"""Table 6: effect of DICE on the L3 hit rate.

Paper: base 37.0% -> DICE 43.6% on average.  The gain comes from installing
the spatially adjacent line that a compressed access delivers for free.
"""

from conftest import run_once

from repro.harness.experiments import table6_l3_hitrate

PAPER = {
    "base/AVG26": "~37.0%",
    "dice/AVG26": "~43.6%",
}


def test_table6_l3_hitrate(benchmark, sim_params, show):
    headers, rows, summary = run_once(
        benchmark, lambda: table6_l3_hitrate(sim_params)
    )
    show("Table 6: L3 hit rate (%)", headers, rows, summary, PAPER)
    # DICE's free adjacent lines must lift the average L3 hit rate.
    assert summary["dice/AVG26"] > summary["base/AVG26"]
    # ...without hurting any single workload much.
    for name, base, dice in ((r[0], r[1], r[2]) for r in rows):
        assert dice > base - 3.0, f"{name}: L3 hit rate fell {base:.1f}->{dice:.1f}"
