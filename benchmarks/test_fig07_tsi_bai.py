"""Fig 7: speedup of compressing with TSI vs BAI, against doubled caches.

Paper shape: TSI never slows anything down (capacity-only, ~+7% average);
BAI wins big on compressible workloads but thrashes incompressible ones
(lbm, libq), averaging ~0%.
"""

from conftest import run_once

from repro.harness.experiments import fig07_tsi_bai

PAPER = {
    "tsi/ALL26": "~1.07",
    "bai/ALL26": "~1.00",
    "2xcap/ALL26": "~1.10",
    "2xcap2xbw/ALL26": "~1.22",
}


def test_fig07_tsi_bai(benchmark, sim_params, show):
    headers, rows, summary = run_once(
        benchmark, lambda: fig07_tsi_bai(sim_params)
    )
    show("Fig 7: TSI and BAI vs doubled caches (speedup)", headers, rows, summary, PAPER)
    by_name = {row[0]: row[1:] for row in rows}
    # TSI compresses for capacity only: no workload should slow down much.
    for name, (tsi, bai, _cap, _both) in by_name.items():
        assert tsi > 0.95, f"TSI degraded {name}: {tsi:.3f}"
    # BAI must thrash the incompressible streaming workloads...
    assert by_name["libq"][1] < 0.9
    assert by_name["lbm"][1] < 1.0
    # ...and win on compressible ones (paper Sec 4.6 names soplex, gcc,
    # zeusmp, astar; our synthetic gcc is the least pronounced of those,
    # so the robust standouts carry the assertion).
    assert by_name["soplex"][1] > 1.05
    assert by_name["zeusmp"][1] > 1.05
    # On average BAI's wins and losses roughly cancel vs TSI's steady gain.
    assert summary["bai/ALL26"] < summary["2xcap2xbw/ALL26"]
