"""Table 8: DICE across cache design points (capacity, bandwidth, latency).

Each column compares DICE against the *matching* uncompressed design.
Paper: +19.0% at base, +13.2% on a 2x-capacity cache (capacity benefit
shrinks, bandwidth benefit stays), +24.5% with 2x channels, +24.4% at
half latency.
"""

from conftest import run_once

from repro.harness.experiments import table8_sensitivity

PAPER = {
    "base(1GB)/ALL26": "~1.190",
    "2x Capacity/ALL26": "~1.132",
    "2x BW/ALL26": "~1.245",
    "50% Latency/ALL26": "~1.244",
}


def test_table8_sensitivity(benchmark, sim_params, show):
    headers, rows, summary = run_once(
        benchmark, lambda: table8_sensitivity(sim_params)
    )
    show("Table 8: DICE vs matching uncompressed designs", headers, rows, summary, PAPER)
    # DICE stays profitable at every design point.
    for label in ("base(1GB)", "2x Capacity", "2x BW", "50% Latency"):
        assert summary[f"{label}/ALL26"] > 1.0, label
    # Doubling capacity erodes part of the benefit (capacity is less scarce).
    assert summary["2x Capacity/ALL26"] < summary["base(1GB)/ALL26"] + 0.02
