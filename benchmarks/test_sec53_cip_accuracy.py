"""Sec 5.3: Cache Index Predictor accuracy vs Last-Time-Table size.

Paper: read-path accuracy grows from 93.2% (512 entries) through 93.8%
(2048, the default — 256 B of SRAM) to 94.1% (8192); the write-path
compressibility predictor reaches ~95%.
"""

from conftest import run_once

from repro.harness.experiments import sec53_cip_accuracy

PAPER = {
    "dice-ltt512": "~93.2%",
    "dice": "~93.8%",
    "dice-ltt8192": "~94.1%",
    "write": "~95%",
}


def test_sec53_cip_accuracy(benchmark, sim_params, show):
    headers, rows, summary = run_once(
        benchmark, lambda: sec53_cip_accuracy(sim_params)
    )
    show("Sec 5.3: CIP accuracy (%)", headers, rows, summary, PAPER)
    # Page-level compressibility correlation makes the LTT accurate.
    assert summary["dice"] > 75.0
    # A bigger table cannot be (meaningfully) worse than a smaller one.
    assert summary["dice-ltt8192"] >= summary["dice-ltt512"] - 2.0
