"""Fig 13: DICE on non-memory-intensive SPEC benchmarks (L3 MPKI < 2).

These workloads mostly fit in the on-chip hierarchy; the paper's point is
that DICE never degrades them and gives ~+2% on average.
"""

from conftest import run_once

from repro.harness.experiments import fig13_nonintensive

PAPER = {"gmean": "~1.02"}


def test_fig13_nonintensive(benchmark, sim_params, show):
    headers, rows, summary = run_once(
        benchmark, lambda: fig13_nonintensive(sim_params)
    )
    show("Fig 13: DICE on non-memory-intensive workloads", headers, rows, summary, PAPER)
    # DICE must not degrade any of them.
    for name, value in ((row[0], row[1]) for row in rows):
        assert value > 0.97, f"DICE degraded {name}: {value:.3f}"
    # Benefit is small but non-negative on average.
    assert 0.99 <= summary["gmean"] <= 1.20
