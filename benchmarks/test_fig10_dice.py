"""Fig 10: the headline result — TSI, BAI, DICE vs a double-capacity
double-bandwidth cache.

Paper: DICE +19.0% average, approaching the 2x/2x cache's +21.9%; DICE
matches BAI where BAI wins and falls back to TSI where BAI loses, never
degrading below baseline.
"""

from conftest import run_once

from repro.harness.experiments import fig10_dice

PAPER = {
    "tsi/ALL26": "~1.07",
    "bai/ALL26": "~1.00",
    "dice/ALL26": "~1.19",
    "2xcap2xbw/ALL26": "~1.22",
    "dice/GAP": "~1.49",
    "dice/SPEC RATE": "~1.12",
}


def test_fig10_dice(benchmark, sim_params, show):
    headers, rows, summary = run_once(
        benchmark, lambda: fig10_dice(sim_params)
    )
    show("Fig 10: DICE speedup vs static schemes", headers, rows, summary, PAPER)
    by_name = {row[0]: row[1:] for row in rows}
    # DICE must never degrade a workload below baseline (Sec 5.4).
    for name, (tsi, bai, dice, _both) in by_name.items():
        assert dice > 0.97, f"DICE degraded {name}: {dice:.3f}"
    # The dynamic scheme beats both static schemes on average.
    assert summary["dice/ALL26"] > summary["tsi/ALL26"]
    assert summary["dice/ALL26"] > summary["bai/ALL26"]
    # ...and delivers a material average gain, biggest on GAP.
    assert summary["dice/ALL26"] > 1.05
    assert summary["dice/GAP"] > summary["dice/SPEC RATE"]
