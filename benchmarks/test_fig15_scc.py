"""Fig 15: Skewed Compressed Cache transplanted onto the DRAM cache.

SCC's multi-location skewed lookup costs four DRAM accesses per request —
fine on SRAM, ruinous on a bandwidth-sensitive DRAM cache.  Paper: SCC
averages a 22% *slowdown* while DICE gains 19%.
"""

from conftest import run_once

from repro.harness.experiments import fig15_scc

PAPER = {
    "scc/ALL26": "~0.78",
    "dice/ALL26": "~1.19",
}


def test_fig15_scc(benchmark, sim_params, show):
    headers, rows, summary = run_once(benchmark, lambda: fig15_scc(sim_params))
    show("Fig 15: SCC vs DICE on a DRAM cache", headers, rows, summary, PAPER)
    # SCC must lose on average; DICE must win; the gap is the point.
    assert summary["scc/ALL26"] < 1.0
    assert summary["dice/ALL26"] > 1.05
    assert summary["dice/ALL26"] - summary["scc/ALL26"] > 0.15
