"""Table 7: DICE vs wider L3 fetch and next-line prefetch.

Paper: 128 B fetch +1.9%, next-line prefetch +1.6% — both pay an extra
DRAM-cache request per extra line.  DICE gets its extra line for free
(+19.0%), and composing DICE with next-line prefetch reaches +20.9%.
"""

from conftest import run_once

from repro.harness.experiments import table7_prefetch

PAPER = {
    "base-wide128/ALL26": "~1.019",
    "base-nextline/ALL26": "~1.016",
    "dice/ALL26": "~1.190",
    "dice-nextline/ALL26": "~1.209",
}


def test_table7_prefetch(benchmark, sim_params, show):
    headers, rows, summary = run_once(
        benchmark, lambda: table7_prefetch(sim_params)
    )
    show("Table 7: prefetch comparison (speedup)", headers, rows, summary, PAPER)
    # Paying bandwidth for the extra line gives only marginal benefit...
    assert summary["base-wide128/ALL26"] < 1.12
    assert summary["base-nextline/ALL26"] < 1.12
    # ...while DICE's free extra line is worth much more.
    assert summary["dice/ALL26"] > summary["base-wide128/ALL26"]
    assert summary["dice/ALL26"] > summary["base-nextline/ALL26"]
