"""Fig 14: L4+memory power, energy, and energy-delay product.

Paper: DICE cuts off-chip energy by ~24% and EDP by ~36%; TSI helps some,
BAI's thrashing makes its energy worse than its performance.
"""

from conftest import run_once

from repro.harness.experiments import fig14_energy

PAPER = {
    "dice/energy": "~0.76",
    "dice/edp": "~0.64",
}


def test_fig14_energy(benchmark, sim_params, show):
    headers, rows, summary = run_once(
        benchmark, lambda: fig14_energy(sim_params)
    )
    show("Fig 14: energy normalized to baseline", headers, rows, summary, PAPER)
    by_cfg = {row[0]: row[1:] for row in rows}
    # DICE saves energy and (more) EDP.
    dice_power, dice_perf, dice_energy, dice_edp = by_cfg["dice"]
    assert dice_energy < 1.0
    assert dice_edp < dice_energy, "EDP gain must compound energy x delay"
    # DICE's EDP must beat both static schemes'.
    assert dice_edp < by_cfg["tsi"][3]
    assert dice_edp < by_cfg["bai"][3]
