"""Fig 11: distribution of BAI vs TSI installs under DICE.

For 50% of lines the two indices coincide (no decision needed).  Among the
decided half, the paper measures a slight skew toward TSI (52/48), because
incompressible workloads push nearly everything to TSI.
"""

from conftest import run_once

from repro.harness.experiments import fig11_index_distribution

PAPER = {
    "decided/tsi_share": "~52%",
    "decided/bai_share": "~48%",
}


def test_fig11_index_distribution(benchmark, sim_params, show):
    headers, rows, summary = run_once(
        benchmark, lambda: fig11_index_distribution(sim_params)
    )
    show("Fig 11: DICE index distribution (% of installs)", headers, rows, summary, PAPER)
    by_name = {row[0]: row[1:] for row in rows}
    # The invariant fraction hovers near 50% of lines by construction.
    for name, (inv, _tsi, _bai) in by_name.items():
        assert 30.0 <= inv <= 70.0, f"{name}: invariant {inv:.1f}%"
    # Incompressible workloads must skew to TSI, compressible ones to BAI.
    assert by_name["libq"][1] > by_name["libq"][2]
    assert by_name["soplex"][2] > by_name["soplex"][1]
    # Shares over the decided half are a split, not a blowout.
    assert 15.0 <= summary["decided/bai_share"] <= 85.0
