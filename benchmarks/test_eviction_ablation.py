"""Ablation: compressed-set victim policy (LRU vs largest-first).

DESIGN.md calls out the set-eviction policy as a design choice worth
measuring: evicting the largest compressed line frees the most bytes per
eviction, but ignores recency; plain LRU keeps hot lines resident.  The
paper's design evicts until fit without specifying an order — this bench
quantifies how much the choice matters.
"""

from conftest import run_once

from repro.harness.experiments import _speedup_experiment


def test_eviction_policy(benchmark, sim_params, show):
    headers, rows, summary = run_once(
        benchmark,
        lambda: _speedup_experiment(
            ["dice", "dice-evict-largest"], params=sim_params
        ),
    )
    show("Ablation: compressed-set victim policy", headers, rows, summary)
    lru = summary["dice/ALL26"]
    largest = summary["dice-evict-largest/ALL26"]
    # Both remain profitable; the policies land in the same band (the
    # interesting output is the per-workload spread, printed above).
    assert lru > 1.0
    assert largest > 1.0
    assert abs(lru - largest) < 0.15
