"""Table 4: sensitivity of DICE to the insertion threshold (32/36/40 B).

Paper: 36 B maximizes performance (+19.0% vs +17.5% at 32 B and +18.3% at
40 B) because BDI's base4-delta2 lines compress singly to 36 B and pairwise
to 68 B, which is exactly what a shared-tag TAD can hold.
"""

from conftest import run_once

from repro.harness.experiments import table4_threshold

PAPER = {
    "dice-t32/ALL26": "~1.175",
    "dice/ALL26": "~1.190",
    "dice-t40/ALL26": "~1.183",
}


def test_table4_threshold(benchmark, sim_params, show):
    headers, rows, summary = run_once(
        benchmark, lambda: table4_threshold(sim_params)
    )
    show("Table 4: DICE threshold sensitivity", headers, rows, summary, PAPER)
    t32 = summary["dice-t32/ALL26"]
    t36 = summary["dice/ALL26"]
    t40 = summary["dice-t40/ALL26"]
    # 36 B is the sweet spot: it must not lose to either neighbor threshold.
    assert t36 >= t32 - 0.01, f"36B ({t36:.3f}) lost to 32B ({t32:.3f})"
    assert t36 >= t40 - 0.01, f"36B ({t36:.3f}) lost to 40B ({t40:.3f})"
    # All thresholds stay profitable on average.
    for value in (t32, t36, t40):
        assert value > 1.0
