# Convenience targets for the DICE reproduction.

.PHONY: install test bench report examples clean

install:
	python setup.py develop

test:
	python -m pytest tests/

bench:
	python -m pytest benchmarks/ --benchmark-only -q -s

report:
	python -m repro.analysis.report EXPERIMENTS.md

examples:
	python examples/quickstart.py
	python examples/compression_explorer.py
	python examples/trace_replay.py omnetpp 1500

clean:
	rm -f .sim_cache.json test_output.txt bench_output.txt
	find . -name __pycache__ -type d -exec rm -rf {} +
