# Convenience targets for the DICE reproduction.

.PHONY: install test check chaos serve service-smoke top slo-check bench bench-parallel bench-core bench-gate report flight run-table examples clean

install:
	python setup.py develop

test:
	python -m pytest tests/

# Tier-1 gate plus a fast fault-injection smoke of the CLI.
check:
	PYTHONPATH=src python -m pytest tests/ -x -q
	REPRO_DISK_CACHE=0 PYTHONPATH=src python -m repro.harness.cli faults --accesses 500

# Self-verifying chaos campaign: seeded faults at every exec seam, then
# assert results bit-identical to a fault-free reference run.
chaos:
	PYTHONPATH=src REPRO_ACCESSES=300 python -m repro.harness.cli chaos \
		--chaos-seed 7 --chaos-rate 0.2 --jobs 2

# Persistent sim-as-a-service daemon: submit campaigns over HTTP with
# `cli submit KEYS`, stream NDJSON progress, SIGTERM to drain gracefully.
serve:
	PYTHONPATH=src python -m repro.harness.cli serve --port 7414

# Daemon lifecycle smoke: cold campaign, 100%-cache-hit warm resubmission,
# healthz/metrics, SIGTERM drain to a checkpoint, bit-identical resume,
# cross-process trace stitching + SLO verdicts.
service-smoke:
	PYTHONPATH=src REPRO_ACCESSES=300 python scripts/service_smoke.py

# Live dashboard for a `make serve` daemon on the default port.
top:
	PYTHONPATH=src python -m repro.harness.cli top

# Judge the daemon's service-level objectives; exit 6 when one is failing.
slo-check:
	PYTHONPATH=src python -m repro.harness.cli slo check

bench:
	python -m pytest benchmarks/ --benchmark-only -q -s

# Serial vs parallel wall-clock on a cold cache; writes BENCH_parallel.json.
bench-parallel:
	PYTHONPATH=src python scripts/bench_parallel.py

# Hot-path throughput per design config; refreshes the committed baseline.
bench-core:
	PYTHONPATH=src python scripts/bench_core.py --min-throughput 4000

# The CI perf gate, runnable locally: floor + tolerance band against the
# committed BENCH_core.json baseline (fresh numbers go to BENCH_core.ci.json).
bench-gate:
	PYTHONPATH=src python scripts/bench_core.py \
		--min-throughput 4000 \
		--baseline BENCH_core.json --band 0.25 \
		--out BENCH_core.ci.json

report:
	python -m repro.analysis.report EXPERIMENTS.md

# Fidelity scoreboard + drift check against FIDELITY_baseline.json.
flight:
	PYTHONPATH=src python -m repro.harness.cli report --flight \
		--check --accesses 300 --out FLIGHT_report.md

# Statistical smoke campaign: 3 derived-seed repetitions of fig13, a
# lint-clean run_table.csv, and CI-backed fidelity verdicts (see
# RUN_TABLE_COLUMNS.md for the schema).
run-table:
	PYTHONPATH=src python -m repro.harness.cli fig13 \
		--accesses 300 --repetitions 3 --jobs 2 --run-table run_table.csv
	python scripts/runtable_lint.py --expect-reps 3 run_table.csv
	PYTHONPATH=src python -m repro.harness.cli report --flight --check \
		--accesses 300 --repetitions 3 --experiments fig13 \
		--out FLIGHT_runtable.md

examples:
	python examples/quickstart.py
	python examples/compression_explorer.py
	python examples/trace_replay.py omnetpp 1500

clean:
	rm -f .sim_cache.json .sim_cache.json.migrated .sim_cache.corrupt.json
	rm -rf .sim_cache.d .sim_cache.cas
	rm -f .service_checkpoint.json
	rm -f .campaign_checkpoint.json BENCH_parallel.json
	rm -f .campaign_flight.json BENCH_core.ci.json FLIGHT_report.md FLIGHT_report.html
	rm -f run_table.csv FLIGHT_runtable.md
	rm -f *.prof.json *.collapsed.txt
	rm -f test_output.txt bench_output.txt
	find . -name __pycache__ -type d -exec rm -rf {} +
