# Convenience targets for the DICE reproduction.

.PHONY: install test check bench bench-parallel report examples clean

install:
	python setup.py develop

test:
	python -m pytest tests/

# Tier-1 gate plus a fast fault-injection smoke of the CLI.
check:
	PYTHONPATH=src python -m pytest tests/ -x -q
	REPRO_DISK_CACHE=0 PYTHONPATH=src python -m repro.harness.cli faults --accesses 500

bench:
	python -m pytest benchmarks/ --benchmark-only -q -s

# Serial vs parallel wall-clock on a cold cache; writes BENCH_parallel.json.
bench-parallel:
	PYTHONPATH=src python scripts/bench_parallel.py

report:
	python -m repro.analysis.report EXPERIMENTS.md

examples:
	python examples/quickstart.py
	python examples/compression_explorer.py
	python examples/trace_replay.py omnetpp 1500

clean:
	rm -f .sim_cache.json .sim_cache.json.migrated .sim_cache.corrupt.json
	rm -rf .sim_cache.d
	rm -f .campaign_checkpoint.json BENCH_parallel.json
	rm -f test_output.txt bench_output.txt
	find . -name __pycache__ -type d -exec rm -rf {} +
