# Convenience targets for the DICE reproduction.

.PHONY: install test check bench report examples clean

install:
	python setup.py develop

test:
	python -m pytest tests/

# Tier-1 gate plus a fast fault-injection smoke of the CLI.
check:
	PYTHONPATH=src python -m pytest tests/ -x -q
	REPRO_DISK_CACHE=0 PYTHONPATH=src python -m repro.harness.cli faults --accesses 500

bench:
	python -m pytest benchmarks/ --benchmark-only -q -s

report:
	python -m repro.analysis.report EXPERIMENTS.md

examples:
	python examples/quickstart.py
	python examples/compression_explorer.py
	python examples/trace_replay.py omnetpp 1500

clean:
	rm -f .sim_cache.json test_output.txt bench_output.txt
	find . -name __pycache__ -type d -exec rm -rf {} +
